//! Deterministic discrete-event simulation kernel.
//!
//! The HydraDB reproduction runs its cluster experiments on a virtual clock:
//! nodes, NIC ports and CPU cores are *timed resources*, and every protocol
//! action (an RDMA write landing in a request ring, a shard picking up a
//! message during its polling sweep, a lease expiring) is an *event* scheduled
//! at a nanosecond-precision virtual time.
//!
//! Design goals:
//!
//! * **Determinism.** Two runs with the same seed produce byte-identical
//!   results. Events that fire at the same virtual time are ordered by their
//!   scheduling sequence number.
//! * **Analytic queueing.** Serial resources ([`FifoResource`]) compute
//!   completion times in O(1) instead of generating start/stop event pairs,
//!   which keeps multi-million-request experiments fast on a single host core.
//! * **Real data plane.** The simulator owns *time*, not *bytes*: the memory
//!   regions, hash tables and ring buffers manipulated by event handlers are
//!   the same thread-safe structures exercised by real OS threads in the unit
//!   and stress tests.
//!
//! # Example
//!
//! ```
//! use hydra_sim::{Sim, time::US};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut sim = Sim::new(42);
//! let fired = Rc::new(Cell::new(0u64));
//! let f = fired.clone();
//! sim.schedule_in(3 * US, move |sim| {
//!     f.set(sim.now());
//! });
//! sim.run();
//! assert_eq!(fired.get(), 3 * US);
//! ```

pub mod reference;
pub mod resource;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use resource::FifoResource;
pub use scheduler::{EventId, Sim};
pub use stats::{Counter, Histogram, HistogramSummary};
pub use time::SimTime;

/// The cluster-wide RNG seed: the `HYDRA_SEED` environment variable if set
/// (decimal, or hex with an `0x` prefix), else `default`.
///
/// Every randomized component — the simulator clock jitter, YCSB key
/// streams, chaos fault plans — derives its seed through this single choke
/// point, so any failing run reproduces exactly by re-running with the seed
/// the failure printed.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("HYDRA_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("HYDRA_SEED is not a valid u64: {s:?}"))
        }
        Err(_) => default,
    }
}
