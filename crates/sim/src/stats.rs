//! Measurement primitives: counters and log-bucketed latency histograms.

/// A named monotonically increasing counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        std::mem::take(&mut self.value)
    }
}

const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 32 linear sub-buckets per power of two
const GROUPS: usize = 64;

/// A log-bucketed histogram of `u64` samples (HDR-style).
///
/// Values are classified by their leading bit into 64 magnitude groups, each
/// split into 32 linear sub-buckets, giving a worst-case relative error of
/// about 3% on reported quantiles — ample for latency distributions while
/// using a fixed 16 KiB of memory regardless of sample count.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; GROUPS * SUB_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0; GROUPS * SUB_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let group = 63 - value.leading_zeros(); // position of the leading bit
        let shift = group - SUB_BITS;
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        ((group - SUB_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        let group = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if group == 0 {
            sub
        } else {
            let shift = (group - 1) as u32;
            ((SUB_BUCKETS as u64) + sub) << shift
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[Self::index_of(value)] += n;
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `p`-quantile, `p` in `[0, 1]`. Returns the exact `max` for
    /// `p = 1.0`. Empty histograms report 0.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p >= 1.0 {
            return self.max;
        }
        let target = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// One-line summary of the distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

/// Point-in-time digest of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean: f64,
    pub min: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
        // Sub-32 values are stored exactly; the 16th of 32 samples is 15.
        assert_eq!(h.quantile(0.5), 15);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = Histogram::new();
        // Uniform over [1, 1_000_000].
        for v in (1..=1_000_000u64).step_by(17) {
            h.record(v);
        }
        for &(p, expect) in &[(0.5, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let got = h.quantile(p) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.05, "p={p} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..100 {
            a.record(12345);
        }
        b.record_n(12345, 100);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.quantile(0.9), b.quantile(0.9));
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(1);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert!(h.quantile(0.99) >= h.quantile(0.5));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn index_value_roundtrip_is_monotonic() {
        let mut last = 0;
        for i in 0..(GROUPS - SUB_BITS as usize) * SUB_BUCKETS / 2 {
            let v = Histogram::value_of(i);
            assert!(v >= last, "bucket values must be non-decreasing");
            last = v;
            // The representative value must map back into the same bucket.
            assert_eq!(Histogram::index_of(v), i, "v={v}");
        }
    }
}
