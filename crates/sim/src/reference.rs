//! The original heap-based scheduler, kept verbatim as a reference.
//!
//! This is the seed implementation that [`crate::scheduler::Sim`] replaced:
//! one `Box<dyn FnOnce>` per event, a `BinaryHeap` keyed on `(time, seq)`,
//! and a side `HashSet` for cancellation. It exists for two reasons:
//!
//! 1. **Equivalence testing.** The proptests in `tests/proptest_sim.rs` run
//!    random schedule/cancel interleavings against both schedulers and
//!    assert identical execution order — the slab + timer-wheel scheduler
//!    must be observationally indistinguishable from this one.
//! 2. **Benchmarking.** `bench/src/bin/perf_events.rs` measures both so the
//!    hot-path speedup in `results/BENCH_hotpath.json` is computed against
//!    the real before-state, not a synthetic baseline.
//!
//! Do not use it in simulation code; it allocates per event and leaks one
//! `HashSet` entry per cancel-after-fire.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    f: Option<EventFn>,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest (time, seq)
// pops first. Ties at the same virtual time resolve in scheduling order,
// which is what makes runs reproducible.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The seed scheduler: virtual clock plus a priority queue of boxed closures.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: std::collections::HashSet<u64>,
    rng: SmallRng,
    executed: u64,
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            executed: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute virtual time `at`.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            cancelled: false,
            f: Some(Box::new(f)),
        });
        EventId(seq)
    }

    /// Schedules `f` to run `delay` nanoseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `at <= deadline`, then advances the clock to
    /// `deadline` (if it is later than the last event executed).
    ///
    /// One deliberate fix over the seed version: cancelled entries at the
    /// queue head are dropped *before* the deadline check. The seed peeked
    /// the raw head, so a cancelled entry inside the deadline made `step()`
    /// fire the next live event even when it lay beyond the deadline,
    /// overshooting the clock. The wheel scheduler never overshoots, and the
    /// equivalence proptest holds both to the correct behaviour.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            while let Some(e) = self.queue.peek() {
                if e.cancelled || self.cancelled.contains(&e.seq) {
                    let e = self.queue.pop().expect("peeked entry");
                    self.cancelled.remove(&e.seq);
                } else {
                    break;
                }
            }
            match self.queue.peek() {
                Some(e) if e.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(mut entry) = self.queue.pop() else {
                return false;
            };
            if entry.cancelled || self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            self.executed += 1;
            let f = entry.f.take().expect("event closure already taken");
            f(self);
            return true;
        }
    }

    /// Whether any events remain scheduled (cancelled-but-unpopped entries
    /// count, matching the seed's behaviour).
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}
