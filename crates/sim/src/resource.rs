//! Timed serial resources.
//!
//! A [`FifoResource`] models anything that serves one request at a time —
//! a shard's CPU core, a NIC's DMA engine, an IPoIB soft-interrupt path.
//! Instead of emitting begin/end event pairs, callers *reserve* service time
//! and get back the completion timestamp; queueing delay falls out of the
//! `busy_until` bookkeeping. This analytic treatment is exact for
//! work-conserving FIFO servers and keeps event counts (and therefore wall
//! time on the host) low.

use crate::time::SimTime;

/// A serial FIFO server with utilization accounting.
#[derive(Debug, Clone)]
pub struct FifoResource {
    name: String,
    busy_until: SimTime,
    total_busy: SimTime,
    jobs: u64,
    opened_at: SimTime,
    frozen_at: Option<SimTime>,
}

impl FifoResource {
    /// Creates an idle resource. `name` appears in utilization reports.
    pub fn new(name: impl Into<String>) -> Self {
        FifoResource {
            name: name.into(),
            busy_until: 0,
            total_busy: 0,
            jobs: 0,
            opened_at: 0,
            frozen_at: None,
        }
    }

    /// Suspends the server at `now` (node crash / power loss). No new work
    /// may be reserved while frozen — callers must gate arrivals (the fabric
    /// fault layer drops traffic to crashed nodes before it reaches the NIC
    /// engines); an acquire on a frozen resource panics to surface gate
    /// leaks deterministically. Already-reserved work is paused and resumes
    /// after [`unfreeze`](Self::unfreeze).
    pub fn freeze(&mut self, now: SimTime) {
        if self.frozen_at.is_none() {
            self.frozen_at = Some(now);
        }
    }

    /// Resumes a frozen server at `now`. Work that was queued when the
    /// freeze hit is shifted by the pause duration, as if the server had
    /// been powered off mid-job; an idle server stays idle.
    pub fn unfreeze(&mut self, now: SimTime) {
        if let Some(t0) = self.frozen_at.take() {
            let pause = now.saturating_sub(t0);
            if self.busy_until > t0 {
                self.busy_until += pause;
            }
        }
    }

    /// Whether the resource is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen_at.is_some()
    }

    /// Resource name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Reserves `dur` nanoseconds of service starting no earlier than `now`,
    /// queued behind any previously reserved work. Returns the completion
    /// time.
    pub fn acquire(&mut self, now: SimTime, dur: SimTime) -> SimTime {
        assert!(self.frozen_at.is_none(), "acquire on frozen {}", self.name);
        let start = self.busy_until.max(now);
        self.busy_until = start + dur;
        self.total_busy += dur;
        self.jobs += 1;
        self.busy_until
    }

    /// Like [`acquire`](Self::acquire) but also returns the start time, which
    /// callers use to measure pure queueing delay.
    pub fn acquire_with_start(&mut self, now: SimTime, dur: SimTime) -> (SimTime, SimTime) {
        assert!(self.frozen_at.is_none(), "acquire on frozen {}", self.name);
        let start = self.busy_until.max(now);
        self.busy_until = start + dur;
        self.total_busy += dur;
        self.jobs += 1;
        (start, self.busy_until)
    }

    /// Reserves a *batch* of work items handed to the server in one kick:
    /// a one-time `fixed` cost (a NIC doorbell, a CQ polling sweep, a
    /// syscall) followed by the per-item costs in `per_item`, all served
    /// back-to-back with no gap. This is the batch cost model used by
    /// doorbell-batched verbs and quantum request draining: the fixed cost
    /// is paid once per batch instead of once per item. Returns the
    /// completion time of the final item (equal to `now`-relative fixed
    /// cost alone when `per_item` is empty).
    pub fn acquire_batch(&mut self, now: SimTime, fixed: SimTime, per_item: &[SimTime]) -> SimTime {
        assert!(self.frozen_at.is_none(), "acquire on frozen {}", self.name);
        let start = self.busy_until.max(now);
        let dur = fixed + per_item.iter().sum::<SimTime>();
        self.busy_until = start + dur;
        self.total_busy += dur;
        self.jobs += per_item.len().max(1) as u64;
        self.busy_until
    }

    /// Cancels the *unstarted tail* of the most recent reservation: service
    /// that was reserved past `from` is handed back, so the resource frees at
    /// `from` instead of its previous `free_at()`. The caller guarantees
    /// `from` is inside (or at the end of) the last reservation — this is the
    /// preemption primitive for interruptible work: reserve the full job,
    /// and if a higher-priority arrival needs the server, truncate the tail
    /// at a safe boundary and re-reserve the remainder later.
    ///
    /// Returns the number of nanoseconds released. Preempting at or after
    /// `free_at()` is a no-op (the job already finished on schedule).
    pub fn preempt_tail(&mut self, from: SimTime) -> SimTime {
        assert!(
            self.frozen_at.is_none(),
            "preempt_tail on frozen {}",
            self.name
        );
        let released = self.busy_until.saturating_sub(from);
        // `total_busy` may have been reset mid-reservation (warm-up window);
        // saturate rather than underflow.
        self.total_busy = self.total_busy.saturating_sub(released);
        self.busy_until = self.busy_until.min(from);
        released
    }

    /// The earliest time a new reservation could begin service.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Whether the resource would be idle at time `now`.
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Total busy nanoseconds reserved since creation (or the last
    /// [`reset_window`](Self::reset_window)).
    pub fn total_busy(&self) -> SimTime {
        self.total_busy
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[window_start, now]`: busy time divided by elapsed
    /// time, clamped to 1.0. Uses the accounting window opened at creation or
    /// the last `reset_window` call.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let span = now.saturating_sub(self.opened_at);
        if span == 0 {
            return 0.0;
        }
        (self.total_busy as f64 / span as f64).min(1.0)
    }

    /// Restarts utilization accounting at `now` (e.g. after warm-up).
    pub fn reset_window(&mut self, now: SimTime) {
        self.opened_at = now;
        self.total_busy = 0;
        self.jobs = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new("cpu0");
        assert_eq!(r.acquire(100, 10), 110);
        assert_eq!(r.free_at(), 110);
    }

    #[test]
    fn busy_resource_queues() {
        let mut r = FifoResource::new("cpu0");
        assert_eq!(r.acquire(0, 100), 100);
        // Arrives at t=10 but must wait until 100.
        let (start, end) = r.acquire_with_start(10, 50);
        assert_eq!(start, 100);
        assert_eq!(end, 150);
    }

    #[test]
    fn gaps_do_not_accumulate_busy_time() {
        let mut r = FifoResource::new("nic");
        r.acquire(0, 10);
        r.acquire(1_000, 10);
        assert_eq!(r.total_busy(), 20);
        assert_eq!(r.jobs(), 2);
        assert!((r.utilization(1_010) - 20.0 / 1_010.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamps_and_handles_empty_window() {
        let mut r = FifoResource::new("x");
        assert_eq!(r.utilization(0), 0.0);
        r.acquire(0, 100);
        assert_eq!(r.utilization(50), 1.0);
    }

    #[test]
    fn reset_window_restarts_accounting() {
        let mut r = FifoResource::new("x");
        r.acquire(0, 100);
        r.reset_window(1_000);
        assert_eq!(r.total_busy(), 0);
        r.acquire(1_000, 50);
        assert!((r.utilization(1_100) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn acquire_batch_pays_fixed_cost_once() {
        let mut batched = FifoResource::new("nic-batched");
        let done = batched.acquire_batch(0, 100, &[30, 30, 30, 30]);
        assert_eq!(done, 220);
        assert_eq!(batched.jobs(), 4);
        assert_eq!(batched.total_busy(), 220);

        // The same four items kicked individually each pay the fixed cost.
        let mut single = FifoResource::new("nic-single");
        let mut t = 0;
        for _ in 0..4 {
            t = single.acquire_batch(0, 100, &[30]);
        }
        assert_eq!(t, 520);
        assert!(done < t);
    }

    #[test]
    fn acquire_batch_queues_behind_prior_work() {
        let mut r = FifoResource::new("cpu");
        r.acquire(0, 100);
        assert_eq!(r.acquire_batch(10, 5, &[10, 10]), 125);
        // An empty batch still costs the fixed kick and counts one job.
        assert_eq!(r.acquire_batch(0, 5, &[]), 130);
        assert_eq!(r.jobs(), 4);
    }

    #[test]
    fn freeze_pauses_queued_work() {
        let mut r = FifoResource::new("nic");
        r.acquire(0, 100);
        r.freeze(40);
        assert!(r.is_frozen());
        // Crash lasted 60ns; the remaining 60ns of service resumes at 100.
        r.unfreeze(100);
        assert!(!r.is_frozen());
        assert_eq!(r.free_at(), 160);
        assert_eq!(r.acquire(100, 10), 170);
    }

    #[test]
    fn freeze_of_idle_resource_leaves_it_idle() {
        let mut r = FifoResource::new("nic");
        r.acquire(0, 10);
        r.freeze(50);
        r.freeze(60); // idempotent: the first freeze wins
        r.unfreeze(500);
        assert_eq!(r.free_at(), 10);
        assert_eq!(r.acquire(500, 5), 505);
        // Unfreeze without a matching freeze is a no-op.
        r.unfreeze(600);
        assert_eq!(r.free_at(), 505);
    }

    #[test]
    #[should_panic(expected = "acquire on frozen")]
    fn acquire_while_frozen_panics() {
        let mut r = FifoResource::new("nic");
        r.freeze(0);
        r.acquire(10, 5);
    }

    #[test]
    fn preempt_tail_releases_unstarted_service() {
        let mut r = FifoResource::new("cpu");
        // A 10µs scan reserved at t=0; a point op arrives at t=3_100 and the
        // scan yields at its 4µs chunk boundary.
        assert_eq!(r.acquire(0, 10_000), 10_000);
        assert_eq!(r.preempt_tail(4_000), 6_000);
        assert_eq!(r.free_at(), 4_000);
        assert_eq!(r.total_busy(), 4_000);
        // The freed tail is immediately reservable; the remainder re-queues
        // behind it like any other job.
        assert_eq!(r.acquire(3_100, 500), 4_500);
        assert_eq!(r.acquire(4_500, 6_000), 10_500);
        assert_eq!(r.total_busy(), 10_500);
    }

    #[test]
    fn preempt_tail_at_or_past_completion_is_noop() {
        let mut r = FifoResource::new("cpu");
        r.acquire(0, 100);
        assert_eq!(r.preempt_tail(100), 0);
        assert_eq!(r.preempt_tail(250), 0);
        assert_eq!(r.free_at(), 100);
        assert_eq!(r.total_busy(), 100);
    }

    #[test]
    fn preempt_tail_survives_window_reset() {
        let mut r = FifoResource::new("cpu");
        r.acquire(0, 10_000);
        r.reset_window(2_000); // warm-up cut mid-reservation
        assert_eq!(r.preempt_tail(4_000), 6_000);
        assert_eq!(r.total_busy(), 0); // saturates, never underflows
        assert_eq!(r.free_at(), 4_000);
    }

    #[test]
    #[should_panic(expected = "preempt_tail on frozen")]
    fn preempt_tail_while_frozen_panics() {
        let mut r = FifoResource::new("cpu");
        r.acquire(0, 100);
        r.freeze(10);
        r.preempt_tail(50);
    }

    #[test]
    fn back_to_back_jobs_saturate() {
        let mut r = FifoResource::new("x");
        let mut t = 0;
        for _ in 0..1000 {
            t = r.acquire(0, 7);
        }
        assert_eq!(t, 7_000);
        assert_eq!(r.utilization(7_000), 1.0);
    }
}
