//! The event scheduler: a virtual clock plus a priority queue of closures.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::SimTime;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: SimTime,
    seq: u64,
    cancelled: bool,
    f: Option<EventFn>,
}

// BinaryHeap is a max-heap; invert the ordering so the earliest (time, seq)
// pops first. Ties at the same virtual time resolve in scheduling order,
// which is what makes runs reproducible.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The simulation world: virtual clock, event queue and the run's RNG.
///
/// Event handlers receive `&mut Sim` and may schedule further events. Shared
/// mutable actor state lives in `Rc<RefCell<..>>` (the simulation is
/// single-threaded) or in the `Arc`-and-atomics data-plane structures that the
/// rest of the workspace provides.
pub struct Sim {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    cancelled: std::collections::HashSet<u64>,
    rng: SmallRng,
    executed: u64,
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            rng: SmallRng::seed_from_u64(seed),
            executed: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a logic error and panics: silently clamping
    /// would hide causality bugs in protocol code.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            cancelled: false,
            f: Some(Box::new(f)),
        });
        EventId(seq)
    }

    /// Schedules `f` to run `delay` nanoseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut Sim) + 'static) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// ran (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `at <= deadline`, then advances the clock to
    /// `deadline` (if it is later than the last event executed).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(e) if e.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(mut entry) = self.queue.pop() else {
                return false;
            };
            if entry.cancelled || self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.at >= self.now, "time went backwards");
            self.now = entry.at;
            self.executed += 1;
            let f = entry.f.take().expect("event closure already taken");
            f(self);
            return true;
        }
    }

    /// Whether any events remain scheduled.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for &t in &[50u64, 10, 30, 20, 40] {
            let o = order.clone();
            sim.schedule_at(t, move |sim| o.borrow_mut().push(sim.now()));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30, 40, 50]);
        assert_eq!(sim.executed_events(), 5);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let o = order.clone();
            sim.schedule_at(100, move |_| o.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_at(5, move |sim| {
            h.borrow_mut().push(sim.now());
            let h2 = h.clone();
            sim.schedule_in(7, move |sim| h2.borrow_mut().push(sim.now()));
        });
        sim.run();
        assert_eq!(*hits.borrow(), vec![5, 12]);
    }

    #[test]
    fn cancel_suppresses_execution() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_at(10, move |_| *h.borrow_mut() += 1);
        sim.cancel(id);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Sim::new(1);
        sim.schedule_at(10, |_| {});
        sim.schedule_at(100, |_| {});
        sim.run_until(50);
        assert_eq!(sim.now(), 50);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.now(), 100);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(1);
        sim.schedule_at(10, |sim| {
            sim.schedule_at(5, |_| {});
        });
        sim.run();
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        fn run(seed: u64) -> Vec<u64> {
            use rand::Rng;
            let mut sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..100 {
                let o = out.clone();
                let d: u64 = 1 + (seed % 3);
                sim.schedule_in(d, move |sim| {
                    let v: u64 = sim.rng().gen();
                    o.borrow_mut().push(v ^ sim.now());
                });
            }
            sim.run();
            Rc::try_unwrap(out).unwrap().into_inner()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
