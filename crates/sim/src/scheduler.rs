//! The event scheduler: a virtual clock driving a slab-backed event arena
//! and a hierarchical timer wheel.
//!
//! Hot-path design (see DESIGN.md "Hot-path performance"):
//!
//! * **Event arena.** Every scheduled closure lives in a slab cell with a
//!   64-byte inline payload; closures that fit (all of the simulator's own
//!   completion/timer closures do) are stored without heap allocation, larger
//!   ones fall back to one boxed allocation. Freed cells go on a free list,
//!   so steady-state scheduling allocates nothing.
//! * **Generational `EventId`s.** An id is `(cell index, generation)`; the
//!   generation bumps on every free, so a stale cancel is a cheap no-op and
//!   the old side `HashSet` of cancelled ids is gone entirely.
//! * **Tombstone cancellation.** `cancel` drops the closure immediately and
//!   marks the cell; the wheel lazily reaps tombstones when it next touches
//!   their slot.
//! * **Hierarchical timer wheel.** Six levels of 64 slots; level `L` slots
//!   are `2^(6L)` ns wide, giving a `2^36` ns (~69 virtual seconds) horizon
//!   that covers every short-horizon event the protocols schedule (NIC
//!   completions, backoff polls, lease timers). Farther events overflow into
//!   a small binary heap and are drained into the wheel when it empties.
//!
//! Determinism contract (load-bearing for every experiment): events execute
//! in `(time, scheduling-order)` — exactly the order the old
//! `BinaryHeap<(time, seq)>` produced. The wheel preserves it structurally:
//! a level-0 slot is a single timestamp; slots only receive cascaded events
//! while empty (a cascade fires only when all lower levels are empty); and a
//! direct insert always carries the globally latest sequence number. So
//! every slot vector stays sequence-sorted without ever sorting.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem::MaybeUninit;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::time::SimTime;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const LEVELS: usize = 6;
/// Events with `at ^ cursor >= 2^HORIZON_BITS` overflow to the heap.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// Inline closure storage per arena cell. 64 bytes covers the workspace's
/// fattest hot-path closures (fabric completions capture an `Arc`, a `Vec`
/// and a boxed callback — about five words).
const INLINE_WORDS: usize = 8;

type Payload = MaybeUninit<[usize; INLINE_WORDS]>;
/// Moves the closure out of `*payload` and calls it. `payload` must hold a
/// valid closure of the type this fn was monomorphized for; the payload is
/// logically uninitialized afterwards.
type CallFn = unsafe fn(*mut Payload, &mut Sim);
/// Drops the closure in `*payload` without calling it (same contract).
type DropFn = unsafe fn(*mut Payload);

unsafe fn call_inline<F: FnOnce(&mut Sim)>(payload: *mut Payload, sim: &mut Sim) {
    ((*payload).as_mut_ptr() as *mut F).read()(sim)
}

unsafe fn drop_inline<F: FnOnce(&mut Sim)>(payload: *mut Payload) {
    drop(((*payload).as_mut_ptr() as *mut F).read())
}

unsafe fn call_boxed<F: FnOnce(&mut Sim)>(payload: *mut Payload, sim: &mut Sim) {
    ((*payload).as_mut_ptr() as *mut Box<F>).read()(sim)
}

unsafe fn drop_boxed<F: FnOnce(&mut Sim)>(payload: *mut Payload) {
    drop(((*payload).as_mut_ptr() as *mut Box<F>).read())
}

/// Identifier of a scheduled event, usable for cancellation.
///
/// Packs `(generation << 32) | arena cell index`; a generation mismatch means
/// the event already fired (or was cancelled) and the cell was reused, so the
/// cancel is a no-op. (A 32-bit generation would need four billion reuses of
/// one cell between issue and cancel to alias — not a practical concern for
/// simulation runs.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(index: u32, gen: u32) -> EventId {
        EventId(((gen as u64) << 32) | index as u64)
    }

    fn index(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Free,
    Pending,
    /// Cancelled but still referenced by a wheel slot / heap entry; the
    /// closure is already dropped. Reaped lazily.
    Tombstone,
}

struct Cell {
    state: CellState,
    gen: u32,
    next_free: u32,
    at: SimTime,
    seq: u64,
    call: CallFn,
    drop_fn: DropFn,
    payload: Payload,
}

/// Far-future overflow entry; min-heap by `(at, seq)` via inverted `Ord`.
struct HeapEntry {
    at: SimTime,
    seq: u64,
    index: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

const NO_FREE: u32 = u32::MAX;

/// The simulation world: virtual clock, event queue and the run's RNG.
///
/// Event handlers receive `&mut Sim` and may schedule further events. Shared
/// mutable actor state lives in `Rc<RefCell<..>>` (the simulation is
/// single-threaded) or in the `Arc`-and-atomics data-plane structures that the
/// rest of the workspace provides.
pub struct Sim {
    now: SimTime,
    /// Wheel reference time. Invariants: `cursor <= at` for every pending
    /// event, and all level/slot assignments are relative to it. Trails
    /// `now` after `run_until` advances the clock past the last event.
    cursor: SimTime,
    seq: u64,
    /// Event arena; payloads hold the closures inline.
    slab: Vec<Cell>,
    free_head: u32,
    /// `wheel[l * SLOTS + s]`: arena indices, always sequence-sorted.
    wheel: Vec<Vec<u32>>,
    /// Per-level slot-occupancy bitmaps.
    occupancy: [u64; LEVELS],
    /// Far-future overflow (`at ^ cursor >= 2^36` at insert time).
    overflow: BinaryHeap<HeapEntry>,
    /// The level-0 slot currently being fired, swapped out wholesale so
    /// handlers can schedule back into that same slot.
    ready: Vec<u32>,
    ready_pos: usize,
    ready_at: SimTime,
    /// Pending minus tombstoned events.
    live: usize,
    rng: SmallRng,
    executed: u64,
}

impl Sim {
    /// Creates a simulation whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            cursor: 0,
            seq: 0,
            slab: Vec::new(),
            free_head: NO_FREE,
            wheel: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupancy: [0; LEVELS],
            overflow: BinaryHeap::new(),
            ready: Vec::new(),
            ready_pos: 0,
            ready_at: 0,
            live: 0,
            rng: SmallRng::seed_from_u64(seed),
            executed: 0,
        }
    }

    /// Current virtual time in nanoseconds.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events scheduled and not yet fired or cancelled.
    pub fn pending_events(&self) -> usize {
        self.live
    }

    /// Arena capacity in cells. Bounded by the peak number of simultaneously
    /// pending events — not by scheduling or cancellation traffic (the
    /// regression hook for the no-leak-on-cancel guarantee).
    pub fn arena_cells(&self) -> usize {
        self.slab.len()
    }

    /// The run's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Schedules `f` to run at absolute virtual time `at`.
    ///
    /// Scheduling in the past is a logic error and panics: silently clamping
    /// would hide causality bugs in protocol code.
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, f: F) -> EventId {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={} now={}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;

        let index = self.alloc_cell();
        let cell = &mut self.slab[index as usize];
        cell.state = CellState::Pending;
        cell.at = at;
        cell.seq = seq;
        if std::mem::size_of::<F>() <= INLINE_WORDS * std::mem::size_of::<usize>()
            && std::mem::align_of::<F>() <= std::mem::align_of::<usize>()
        {
            unsafe { (cell.payload.as_mut_ptr() as *mut F).write(f) };
            cell.call = call_inline::<F>;
            cell.drop_fn = drop_inline::<F>;
        } else {
            unsafe { (cell.payload.as_mut_ptr() as *mut Box<F>).write(Box::new(f)) };
            cell.call = call_boxed::<F>;
            cell.drop_fn = drop_boxed::<F>;
        }
        let gen = cell.gen;
        self.live += 1;
        self.insert_index(index, at);
        EventId::new(index, gen)
    }

    /// Schedules `f` to run `delay` nanoseconds from now.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: SimTime, f: F) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// ran (or was already cancelled) is a no-op: the generation check makes
    /// stale ids inert, and nothing is retained per cancel.
    pub fn cancel(&mut self, id: EventId) {
        let Some(cell) = self.slab.get_mut(id.index() as usize) else {
            return;
        };
        if cell.gen != id.generation() || cell.state != CellState::Pending {
            return;
        }
        // Drop the closure now; the wheel reaps the tombstoned cell lazily.
        unsafe { (cell.drop_fn)(&mut cell.payload) };
        cell.state = CellState::Tombstone;
        self.live -= 1;
    }

    /// Runs events until the queue is empty.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with `at <= deadline`, then advances the clock to
    /// `deadline` (if it is later than the last event executed).
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.peek_next_at() {
                Some(at) if at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Executes the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            if !self.advance_to_ready() {
                return false;
            }
            let index = self.ready[self.ready_pos];
            self.ready_pos += 1;
            let cell = &mut self.slab[index as usize];
            match cell.state {
                CellState::Tombstone => {
                    self.free_cell(index);
                    continue;
                }
                CellState::Pending => {}
                CellState::Free => unreachable!("freed cell left in ready batch"),
            }
            let at = cell.at;
            debug_assert!(at >= self.now, "time went backwards");
            debug_assert_eq!(at, self.ready_at, "ready batch time skewed");
            let call = cell.call;
            // Move the closure's bytes to the stack and free the cell
            // *before* invoking it: the handler may schedule into (and thus
            // reuse) this very cell, so the arena copy must already be dead.
            let mut payload: Payload = MaybeUninit::uninit();
            unsafe {
                std::ptr::copy_nonoverlapping(&cell.payload, &mut payload, 1);
            }
            self.free_cell(index);
            self.live -= 1;
            self.now = at;
            self.cursor = at;
            self.executed += 1;
            unsafe { call(&mut payload, self) };
            return true;
        }
    }

    /// Whether any events remain scheduled.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    // ---- arena ----------------------------------------------------------

    fn alloc_cell(&mut self) -> u32 {
        if self.free_head != NO_FREE {
            let index = self.free_head;
            self.free_head = self.slab[index as usize].next_free;
            return index;
        }
        let index = u32::try_from(self.slab.len()).expect("event arena exceeds u32 indices");
        self.slab.push(Cell {
            state: CellState::Free,
            gen: 0,
            next_free: NO_FREE,
            at: 0,
            seq: 0,
            call: call_inline::<fn(&mut Sim)>,
            drop_fn: drop_inline::<fn(&mut Sim)>,
            payload: MaybeUninit::uninit(),
        });
        index
    }

    fn free_cell(&mut self, index: u32) {
        let cell = &mut self.slab[index as usize];
        debug_assert_ne!(cell.state, CellState::Free, "double free of event cell");
        cell.state = CellState::Free;
        cell.gen = cell.gen.wrapping_add(1);
        cell.next_free = self.free_head;
        self.free_head = index;
    }

    // ---- wheel ----------------------------------------------------------

    /// Level for an event at `at` relative to the cursor, or `None` for
    /// overflow. Level `L` iff the highest bit where `at` and `cursor`
    /// differ lies in `[6L, 6L+6)`.
    #[inline]
    fn level_of(&self, at: SimTime) -> Option<usize> {
        let x = at ^ self.cursor;
        if x == 0 {
            return Some(0);
        }
        let msb = 63 - x.leading_zeros();
        if msb >= HORIZON_BITS {
            None
        } else {
            Some((msb / SLOT_BITS) as usize)
        }
    }

    fn insert_index(&mut self, index: u32, at: SimTime) {
        debug_assert!(at >= self.cursor);
        match self.level_of(at) {
            Some(level) => {
                let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
                self.wheel[level * SLOTS + slot].push(index);
                self.occupancy[level] |= 1 << slot;
            }
            None => {
                let seq = self.slab[index as usize].seq;
                self.overflow.push(HeapEntry { at, seq, index });
            }
        }
    }

    /// Ensures `ready[ready_pos..]` holds the next due batch (all events at
    /// one timestamp, sequence-ordered). Returns `false` when nothing is
    /// pending. Commits cursor advances, cascades and overflow drains.
    fn advance_to_ready(&mut self) -> bool {
        loop {
            if self.ready_pos < self.ready.len() {
                return true;
            }
            self.ready.clear();
            self.ready_pos = 0;
            let Some(level) = self.occupancy.iter().position(|&b| b != 0) else {
                if !self.drain_overflow() {
                    // Queue truly empty (trailing tombstones all reaped).
                    // Re-anchor the wheel at the clock: cascading past the
                    // tombstones may have carried the cursor beyond `now`,
                    // and the next insert must see `cursor <= at`.
                    self.cursor = self.now;
                    return false;
                }
                continue;
            };
            let slot = self.occupancy[level].trailing_zeros() as usize;
            self.occupancy[level] &= !(1 << slot);
            if level == 0 {
                // A level-0 slot is one exact timestamp: swap it out as the
                // ready batch. (Swapping keeps both vectors' capacity alive,
                // so steady state allocates nothing.)
                std::mem::swap(&mut self.ready, &mut self.wheel[slot]);
                self.ready_at = (self.cursor & !(SLOTS as u64 - 1)) | slot as u64;
            } else {
                // Cascade the slot downwards. Only reached when all lower
                // levels are empty, which is what keeps slot vectors
                // sequence-sorted: cascaded events land in empty slots, and
                // later direct inserts always have higher sequence numbers.
                let width = SLOT_BITS * level as u32;
                let slot_start =
                    (self.cursor & !((1u64 << (width + SLOT_BITS)) - 1)) | ((slot as u64) << width);
                // `run_until` can leave the cursor inside this slot's span;
                // never move it backwards.
                self.cursor = self.cursor.max(slot_start);
                let mut buf = std::mem::take(&mut self.wheel[level * SLOTS + slot]);
                for &index in &buf {
                    if self.slab[index as usize].state == CellState::Tombstone {
                        self.free_cell(index);
                    } else {
                        let at = self.slab[index as usize].at;
                        debug_assert!(self.level_of(at).is_some_and(|l| l < level));
                        self.insert_index(index, at);
                    }
                }
                buf.clear();
                // Return the buffer (and its capacity) to the slot it came
                // from: cascades re-insert strictly below `level`, so the
                // slot is still empty.
                self.wheel[level * SLOTS + slot] = buf;
            }
        }
    }

    /// Jumps the cursor to the earliest overflow event and pulls every
    /// overflow entry back inside the wheel horizon. Returns `false` when
    /// the overflow heap is empty too.
    fn drain_overflow(&mut self) -> bool {
        loop {
            match self.overflow.peek() {
                None => return false,
                Some(top) if self.slab[top.index as usize].state == CellState::Tombstone => {
                    let top = self.overflow.pop().expect("peeked entry");
                    self.free_cell(top.index);
                }
                Some(top) => {
                    debug_assert!(top.at >= self.cursor);
                    self.cursor = top.at;
                    break;
                }
            }
        }
        while let Some(top) = self.overflow.peek() {
            if (top.at ^ self.cursor) >> HORIZON_BITS != 0 {
                break;
            }
            let top = self.overflow.pop().expect("peeked entry");
            if self.slab[top.index as usize].state == CellState::Tombstone {
                self.free_cell(top.index);
            } else {
                // Popped in (at, seq) order, so same-time events land in
                // their slot sequence-sorted.
                self.insert_index(top.index, top.at);
            }
        }
        true
    }

    /// Time of the next live event, without committing cursor movement
    /// (cascades / overflow drains). The only mutation is tombstone reaping,
    /// which is unobservable. Used by `run_until` to decide whether to fire.
    fn peek_next_at(&mut self) -> Option<SimTime> {
        // Ready batch first.
        while self.ready_pos < self.ready.len() {
            let index = self.ready[self.ready_pos];
            if self.slab[index as usize].state == CellState::Tombstone {
                self.free_cell(index);
                self.ready_pos += 1;
            } else {
                return Some(self.ready_at);
            }
        }
        // The earliest pending event lives in the lowest occupied slot of
        // the lowest non-empty level (levels are strictly time-ordered).
        for level in 0..LEVELS {
            while self.occupancy[level] != 0 {
                let slot = self.occupancy[level].trailing_zeros() as usize;
                let slot_idx = level * SLOTS + slot;
                let mut vec = std::mem::take(&mut self.wheel[slot_idx]);
                vec.retain(|&index| {
                    if self.slab[index as usize].state == CellState::Tombstone {
                        self.free_cell(index);
                        false
                    } else {
                        true
                    }
                });
                let earliest = vec.iter().map(|&i| self.slab[i as usize].at).min();
                self.wheel[slot_idx] = vec;
                match earliest {
                    None => self.occupancy[level] &= !(1 << slot),
                    Some(at) => return Some(at),
                }
            }
        }
        // Overflow heap (lazy tombstone pops).
        loop {
            match self.overflow.peek() {
                None => return None,
                Some(top) if self.slab[top.index as usize].state == CellState::Tombstone => {
                    let top = self.overflow.pop().expect("peeked entry");
                    self.free_cell(top.index);
                }
                Some(top) => return Some(top.at),
            }
        }
    }
}

impl Drop for Sim {
    fn drop(&mut self) {
        // Pending closures own resources (Rc's, callbacks); drop them.
        for cell in &mut self.slab {
            if cell.state == CellState::Pending {
                unsafe { (cell.drop_fn)(&mut cell.payload) };
                cell.state = CellState::Free;
            }
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for &t in &[50u64, 10, 30, 20, 40] {
            let o = order.clone();
            sim.schedule_at(t, move |sim| o.borrow_mut().push(sim.now()));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30, 40, 50]);
        assert_eq!(sim.executed_events(), 5);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..10 {
            let o = order.clone();
            sim.schedule_at(100, move |_| o.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_at(5, move |sim| {
            h.borrow_mut().push(sim.now());
            let h2 = h.clone();
            sim.schedule_in(7, move |sim| h2.borrow_mut().push(sim.now()));
        });
        sim.run();
        assert_eq!(*hits.borrow(), vec![5, 12]);
    }

    #[test]
    fn cancel_suppresses_execution() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let h = hits.clone();
        let id = sim.schedule_at(10, move |_| *h.borrow_mut() += 1);
        sim.cancel(id);
        sim.run();
        assert_eq!(*hits.borrow(), 0);
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Sim::new(1);
        sim.schedule_at(10, |_| {});
        sim.schedule_at(100, |_| {});
        sim.run_until(50);
        assert_eq!(sim.now(), 50);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(sim.now(), 100);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(1);
        sim.schedule_at(10, |sim| {
            sim.schedule_at(5, |_| {});
        });
        sim.run();
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        fn run(seed: u64) -> Vec<u64> {
            use rand::Rng;
            let mut sim = Sim::new(seed);
            let out = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..100 {
                let o = out.clone();
                let d: u64 = 1 + (seed % 3);
                sim.schedule_in(d, move |sim| {
                    let v: u64 = sim.rng().gen();
                    o.borrow_mut().push(v ^ sim.now());
                });
            }
            sim.run();
            Rc::try_unwrap(out).unwrap().into_inner()
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    // ---- slab + wheel specifics -----------------------------------------

    #[test]
    fn far_future_events_cross_the_wheel_horizon() {
        // 2^36 ns horizon; schedule well past it, and nearby, interleaved.
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        for &t in &[1u64 << 40, 5, (1 << 40) + 1, 1 << 36, 70_000_000_000] {
            let o = order.clone();
            sim.schedule_at(t, move |sim| o.borrow_mut().push(sim.now()));
        }
        sim.run();
        assert_eq!(
            *order.borrow(),
            vec![5, 1 << 36, 70_000_000_000, 1 << 40, (1 << 40) + 1]
        );
    }

    #[test]
    fn ties_across_overflow_and_wheel_keep_scheduling_order() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let t = 1u64 << 38;
        for i in 0..6 {
            let o = order.clone();
            // All at the same far-future instant; must fire 0..6 in order.
            sim.schedule_at(t, move |_| o.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn handler_scheduling_at_its_own_time_runs_last_in_batch() {
        let mut sim = Sim::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o0 = order.clone();
        sim.schedule_at(10, move |sim| {
            o0.borrow_mut().push("first");
            let o = o0.clone();
            sim.schedule_at(10, move |_| o.borrow_mut().push("zero-delay"));
        });
        let o1 = order.clone();
        sim.schedule_at(10, move |_| o1.borrow_mut().push("second"));
        sim.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "zero-delay"]);
    }

    #[test]
    fn arena_reuses_cells_and_generations_make_stale_cancels_inert() {
        let mut sim = Sim::new(1);
        let hits = Rc::new(RefCell::new(0u32));
        let h0 = hits.clone();
        let first = sim.schedule_at(1, move |_| *h0.borrow_mut() += 1);
        sim.run();
        // The cell is reused for the next event...
        let h1 = hits.clone();
        let second = sim.schedule_at(2, move |_| *h1.borrow_mut() += 10);
        assert_eq!(first.index(), second.index());
        assert_ne!(first.generation(), second.generation());
        // ...and cancelling through the stale id must not kill it.
        sim.cancel(first);
        sim.run();
        assert_eq!(*hits.borrow(), 11);
        assert_eq!(sim.arena_cells(), 1);
    }

    #[test]
    fn cancel_after_fire_does_not_grow_memory() {
        // Regression for the old `HashSet<u64>` cancel bookkeeping, which
        // leaked one entry per cancel-after-fire forever. The arena must stay
        // at its steady-state size no matter how many stale cancels arrive.
        let mut sim = Sim::new(1);
        let mut stale = Vec::new();
        for round in 0..10_000u64 {
            let id = sim.schedule_at(round, |_| {});
            sim.run();
            stale.push(id);
        }
        for id in stale {
            sim.cancel(id); // all no-ops
        }
        assert_eq!(sim.arena_cells(), 1, "arena grew under stale cancels");
        assert!(sim.is_idle());
        // Live cancels are reclaimed too: a tombstone holds its cell only
        // until the wheel reaps it, so repeated schedule+cancel churn must
        // reuse the free list instead of growing the arena again.
        for round in 0..10_000u64 {
            let id = sim.schedule_at(20_000 + round, |_| {});
            sim.cancel(id);
        }
        sim.run();
        let footprint = sim.arena_cells();
        for round in 0..10_000u64 {
            let id = sim.schedule_at(60_000 + round, |_| {});
            sim.cancel(id);
        }
        sim.run();
        assert_eq!(
            sim.arena_cells(),
            footprint,
            "arena grew across churn rounds"
        );
    }

    #[test]
    fn large_closures_fall_back_to_boxing() {
        let mut sim = Sim::new(1);
        let big = [7u8; 256]; // larger than the 64-byte inline payload
        let out = Rc::new(RefCell::new(0u64));
        let o = out.clone();
        sim.schedule_at(3, move |_| {
            *o.borrow_mut() = big.iter().map(|&b| b as u64).sum();
        });
        sim.run();
        assert_eq!(*out.borrow(), 7 * 256);
    }

    #[test]
    fn dropping_sim_drops_pending_closures() {
        struct NoteDrop(Rc<RefCell<u32>>);
        impl Drop for NoteDrop {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let drops = Rc::new(RefCell::new(0u32));
        {
            let mut sim = Sim::new(1);
            for t in [1u64, 2, 1 << 40] {
                let token = NoteDrop(drops.clone());
                sim.schedule_at(t, move |_| {
                    let _keep = &token;
                });
            }
            let cancelled = {
                let token = NoteDrop(drops.clone());
                sim.schedule_at(5, move |_| {
                    let _keep = &token;
                })
            };
            sim.cancel(cancelled); // drops its closure immediately
            assert_eq!(*drops.borrow(), 1);
        }
        assert_eq!(*drops.borrow(), 4);
    }

    #[test]
    fn run_until_then_scheduling_near_the_cursor_stays_ordered() {
        // run_until advances `now` past the cursor; later inserts must still
        // fire in (time, seq) order even when they straddle slot boundaries.
        let mut sim = Sim::new(1);
        sim.schedule_at(100_000, |_| {});
        sim.run_until(70_000);
        assert_eq!(sim.now(), 70_000);
        let order = Rc::new(RefCell::new(Vec::new()));
        for &t in &[70_001u64, 99_999, 70_002, 100_001] {
            let o = order.clone();
            sim.schedule_at(t, move |sim| o.borrow_mut().push(sim.now()));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![70_001, 70_002, 99_999, 100_001]);
        assert_eq!(sim.executed_events(), 5);
    }

    #[test]
    fn cancelled_far_future_events_do_not_strand_the_cursor() {
        // Draining a queue whose tail is all tombstones (e.g. a cancelled
        // lease timer) must not leave the wheel cursor ahead of the clock:
        // the next near-term insert would otherwise violate `cursor <= at`.
        let mut sim = Sim::new(1);
        sim.schedule_at(10, |_| {});
        let far = sim.schedule_at(1 << 20, |_| {});
        let heap_far = sim.schedule_at(1 << 40, |_| {});
        sim.cancel(far);
        sim.cancel(heap_far);
        sim.run();
        assert_eq!(sim.now(), 10);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_at(11, move |_| *f.borrow_mut() = true);
        sim.run();
        assert!(*fired.borrow());
        assert_eq!(sim.now(), 11);
    }

    #[test]
    fn pending_events_tracks_live_population() {
        let mut sim = Sim::new(1);
        let a = sim.schedule_at(10, |_| {});
        let _b = sim.schedule_at(20, |_| {});
        assert_eq!(sim.pending_events(), 2);
        sim.cancel(a);
        assert_eq!(sim.pending_events(), 1);
        sim.run();
        assert_eq!(sim.pending_events(), 0);
    }
}
