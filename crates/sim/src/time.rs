//! Virtual time units.
//!
//! All simulator timestamps and durations are `u64` nanoseconds. The type
//! alias [`SimTime`] exists for documentation value; the unit constants keep
//! latency-model code readable (`3 * US` instead of `3_000`).

/// A point in virtual time or a duration, in nanoseconds.
pub type SimTime = u64;

/// One nanosecond.
pub const NS: SimTime = 1;
/// One microsecond.
pub const US: SimTime = 1_000;
/// One millisecond.
pub const MS: SimTime = 1_000_000;
/// One second.
pub const SEC: SimTime = 1_000_000_000;

/// Formats a virtual time compactly for logs and reports (e.g. `12.345us`).
pub fn fmt_time(t: SimTime) -> String {
    if t >= SEC {
        format!("{:.3}s", t as f64 / SEC as f64)
    } else if t >= MS {
        format!("{:.3}ms", t as f64 / MS as f64)
    } else if t >= US {
        format!("{:.3}us", t as f64 / US as f64)
    } else {
        format!("{}ns", t)
    }
}

/// Converts a duration in virtual nanoseconds to fractional microseconds.
pub fn as_us(t: SimTime) -> f64 {
    t as f64 / US as f64
}

/// Converts a duration in virtual nanoseconds to fractional seconds.
pub fn as_secs(t: SimTime) -> f64 {
    t as f64 / SEC as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(US, 1_000 * NS);
        assert_eq!(MS, 1_000 * US);
        assert_eq!(SEC, 1_000 * MS);
    }

    #[test]
    fn fmt_time_picks_the_right_unit() {
        assert_eq!(fmt_time(17), "17ns");
        assert_eq!(fmt_time(1_500), "1.500us");
        assert_eq!(fmt_time(2 * MS), "2.000ms");
        assert_eq!(fmt_time(3 * SEC + 500 * MS), "3.500s");
    }

    #[test]
    fn conversions() {
        assert_eq!(as_us(2_500), 2.5);
        assert_eq!(as_secs(SEC / 2), 0.5);
    }
}
