//! Leader election via ephemeral-sequential znodes — the standard ZooKeeper
//! recipe, used for the SWAT leader (§5.1: "In the case of SWAT leader
//! failure, a new leader from the SWAT group is elected and takes over").
//!
//! Each candidate creates `/prefix/member-<seq>` (ephemeral sequential). The
//! candidate owning the lowest sequence is the leader; every other candidate
//! watches the member immediately preceding it, so a failure wakes exactly
//! one successor (no herd effect).

use crate::tree::{Coord, CoordError, CreateMode, SessionId, WatcherId};

/// One candidate's handle into an election.
#[derive(Debug, Clone)]
pub struct LeaderElection {
    /// Election root, e.g. `/swat/election`.
    prefix: String,
    /// This candidate's znode path.
    pub me: String,
    /// This candidate's session.
    pub session: SessionId,
}

impl LeaderElection {
    /// Joins the election rooted at `prefix` (created if missing).
    pub fn join(
        coord: &mut Coord,
        prefix: &str,
        session: SessionId,
        data: Vec<u8>,
    ) -> Result<LeaderElection, CoordError> {
        if !coord.exists(prefix) {
            // Create missing ancestors (prefix paths are short and static).
            let mut built = String::new();
            for seg in prefix.split('/').filter(|s| !s.is_empty()) {
                built.push('/');
                built.push_str(seg);
                if !coord.exists(&built) {
                    coord.create(&built, Vec::new(), CreateMode::Persistent, None)?;
                }
            }
        }
        let (me, _) = coord.create(
            &format!("{prefix}/member-"),
            data,
            CreateMode::EphemeralSequential,
            Some(session),
        )?;
        Ok(LeaderElection {
            prefix: prefix.to_string(),
            me,
            session,
        })
    }

    /// Whether this candidate currently leads (owns the lowest sequence).
    pub fn is_leader(&self, coord: &Coord) -> Result<bool, CoordError> {
        let mut children = coord.children(&self.prefix)?;
        match children.next() {
            Some(first) => Ok(first == self.me),
            None => Err(CoordError::NoNode),
        }
    }

    /// The current leader's znode and data, if any candidate is present.
    pub fn leader(&self, coord: &Coord) -> Result<Option<(String, Vec<u8>)>, CoordError> {
        let first = coord.children(&self.prefix)?.next().map(|s| s.to_string());
        match first {
            Some(p) => {
                let data = coord.get_data(&p)?.to_vec();
                Ok(Some((p, data)))
            }
            None => Ok(None),
        }
    }

    /// Registers the no-herd watch: the candidate immediately ahead of `me`.
    /// Returns the watched path (`None` when `me` is already the leader).
    pub fn watch_predecessor(
        &self,
        coord: &mut Coord,
        watcher: WatcherId,
    ) -> Result<Option<String>, CoordError> {
        let children = coord.children_vec(&self.prefix)?;
        let my_idx = children
            .iter()
            .position(|c| c == &self.me)
            .ok_or(CoordError::NoNode)?;
        if my_idx == 0 {
            return Ok(None);
        }
        let pred = children[my_idx - 1].clone();
        coord.watch_exists(&pred, watcher);
        Ok(Some(pred))
    }

    /// Leaves the election (clean shutdown).
    pub fn resign(&self, coord: &mut Coord) -> Result<(), CoordError> {
        coord.delete(&self.me).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::EventKind;

    #[test]
    fn lowest_sequence_leads() {
        let mut z = Coord::new();
        let s1 = z.create_session(0, 1_000);
        let s2 = z.create_session(0, 1_000);
        let e1 = LeaderElection::join(&mut z, "/swat/election", s1, b"node1".to_vec()).unwrap();
        let e2 = LeaderElection::join(&mut z, "/swat/election", s2, b"node2".to_vec()).unwrap();
        assert!(e1.is_leader(&z).unwrap());
        assert!(!e2.is_leader(&z).unwrap());
        let (leader, data) = e2.leader(&z).unwrap().unwrap();
        assert_eq!(leader, e1.me);
        assert_eq!(data, b"node1");
    }

    #[test]
    fn successor_takes_over_on_session_expiry() {
        let mut z = Coord::new();
        let s1 = z.create_session(0, 100);
        let s2 = z.create_session(0, 10_000);
        let e1 = LeaderElection::join(&mut z, "/el", s1, vec![]).unwrap();
        let e2 = LeaderElection::join(&mut z, "/el", s2, vec![]).unwrap();
        let watched = e2.watch_predecessor(&mut z, WatcherId(2)).unwrap();
        assert_eq!(watched, Some(e1.me.clone()));
        // Leader's session dies.
        let events = z.tick(10_000);
        assert!(events
            .iter()
            .any(|e| e.kind == EventKind::Deleted && e.watcher == WatcherId(2)));
        assert!(e2.is_leader(&z).unwrap());
    }

    #[test]
    fn middle_candidate_watches_its_predecessor_not_the_leader() {
        let mut z = Coord::new();
        let sessions: Vec<_> = (0..3).map(|_| z.create_session(0, 1_000)).collect();
        let els: Vec<_> = sessions
            .iter()
            .map(|&s| LeaderElection::join(&mut z, "/el", s, vec![]).unwrap())
            .collect();
        let watched = els[2].watch_predecessor(&mut z, WatcherId(3)).unwrap();
        assert_eq!(watched, Some(els[1].me.clone()));
        assert_eq!(
            els[0].watch_predecessor(&mut z, WatcherId(1)).unwrap(),
            None
        );
    }

    #[test]
    fn resign_hands_leadership_over() {
        let mut z = Coord::new();
        let s1 = z.create_session(0, 1_000);
        let s2 = z.create_session(0, 1_000);
        let e1 = LeaderElection::join(&mut z, "/el", s1, vec![]).unwrap();
        let e2 = LeaderElection::join(&mut z, "/el", s2, vec![]).unwrap();
        e1.resign(&mut z).unwrap();
        assert!(e2.is_leader(&z).unwrap());
        assert_eq!(e2.leader(&z).unwrap().unwrap().0, e2.me);
    }

    #[test]
    fn empty_election_reports_no_leader() {
        let mut z = Coord::new();
        let s = z.create_session(0, 1_000);
        let e = LeaderElection::join(&mut z, "/el", s, vec![]).unwrap();
        e.resign(&mut z).unwrap();
        assert_eq!(e.leader(&z).unwrap(), None);
        assert_eq!(e.is_leader(&z).unwrap_err(), CoordError::NoNode);
    }
}
