//! The znode tree, sessions and watches.

use std::collections::{BTreeMap, HashMap};

/// A client session. Ephemeral znodes die with their session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Identifies the party that registered a watch; events are routed back to
/// it by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WatcherId(pub u64);

/// Node creation modes, mirroring ZooKeeper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    Persistent,
    Ephemeral,
    PersistentSequential,
    EphemeralSequential,
}

impl CreateMode {
    fn is_ephemeral(self) -> bool {
        matches!(
            self,
            CreateMode::Ephemeral | CreateMode::EphemeralSequential
        )
    }

    fn is_sequential(self) -> bool {
        matches!(
            self,
            CreateMode::PersistentSequential | CreateMode::EphemeralSequential
        )
    }
}

/// What happened at a watched path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    Created,
    Deleted,
    DataChanged,
    ChildrenChanged,
}

/// A fired (one-shot) watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The path the watch was registered on.
    pub path: String,
    /// What happened.
    pub kind: EventKind,
    /// Who registered the watch.
    pub watcher: WatcherId,
}

/// Znode metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Monotonic version, bumped on data changes.
    pub version: u64,
    /// Owning session for ephemerals.
    pub owner: Option<SessionId>,
}

/// Errors mirroring ZooKeeper's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// Path does not exist (or parent missing on create).
    NoNode,
    /// Create collided with an existing node.
    NodeExists,
    /// Delete of a node that still has children.
    NotEmpty,
    /// Operation referenced an expired or unknown session.
    NoSession,
    /// Malformed path (must start with '/', no trailing '/').
    BadPath,
}

impl std::fmt::Display for CoordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CoordError::NoNode => "no such znode",
            CoordError::NodeExists => "znode already exists",
            CoordError::NotEmpty => "znode has children",
            CoordError::NoSession => "unknown or expired session",
            CoordError::BadPath => "malformed path",
        };
        f.write_str(s)
    }
}

impl std::error::Error for CoordError {}

#[derive(Debug, Clone)]
struct Znode {
    data: Vec<u8>,
    version: u64,
    owner: Option<SessionId>,
    /// Per-parent sequential counter (only meaningful on parents).
    seq_counter: u64,
}

#[derive(Debug, Clone)]
struct Session {
    last_heartbeat: u64,
    timeout: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WatchType {
    Exists,
    Data,
    Children,
}

/// The coordination service. All mutating calls return the watch events they
/// fired; the embedding runtime routes them to watchers.
///
/// ```
/// use hydra_coord::{Coord, CreateMode};
///
/// let mut zk = Coord::new();
/// let session = zk.create_session(0, 1_000);
/// zk.create("/servers", vec![], CreateMode::Persistent, None).unwrap();
/// zk.create("/servers/shard-0", b"up".to_vec(), CreateMode::Ephemeral, Some(session)).unwrap();
/// assert!(zk.exists("/servers/shard-0"));
/// // The shard stops heartbeating; its ephemeral disappears on expiry.
/// zk.tick(2_000);
/// assert!(!zk.exists("/servers/shard-0"));
/// ```
#[derive(Debug, Default)]
pub struct Coord {
    znodes: BTreeMap<String, Znode>,
    sessions: HashMap<SessionId, Session>,
    watches: HashMap<String, Vec<(WatcherId, WatchType)>>,
    next_session: u64,
}

fn parent_of(path: &str) -> Option<&str> {
    if path == "/" {
        return None;
    }
    let idx = path.rfind('/')?;
    Some(if idx == 0 { "/" } else { &path[..idx] })
}

fn valid_path(path: &str) -> bool {
    path == "/" || (path.starts_with('/') && !path.ends_with('/') && !path.contains("//"))
}

impl Coord {
    /// Creates a service containing only the root znode.
    pub fn new() -> Self {
        let mut c = Coord::default();
        c.znodes.insert(
            "/".to_string(),
            Znode {
                data: Vec::new(),
                version: 0,
                owner: None,
                seq_counter: 0,
            },
        );
        c
    }

    /// Opens a session with the given heartbeat timeout.
    pub fn create_session(&mut self, now: u64, timeout: u64) -> SessionId {
        let id = SessionId(self.next_session);
        self.next_session += 1;
        self.sessions.insert(
            id,
            Session {
                last_heartbeat: now,
                timeout,
            },
        );
        id
    }

    /// Refreshes a session's liveness.
    pub fn heartbeat(&mut self, session: SessionId, now: u64) -> Result<(), CoordError> {
        match self.sessions.get_mut(&session) {
            Some(s) => {
                s.last_heartbeat = now;
                Ok(())
            }
            None => Err(CoordError::NoSession),
        }
    }

    /// Whether a session is currently live.
    pub fn session_alive(&self, session: SessionId) -> bool {
        self.sessions.contains_key(&session)
    }

    /// Expires sessions whose heartbeat lapsed, deleting their ephemerals.
    /// Returns fired watches. Call periodically (the ZooKeeper tick).
    pub fn tick(&mut self, now: u64) -> Vec<WatchEvent> {
        let expired: Vec<SessionId> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.last_heartbeat + s.timeout < now)
            .map(|(&id, _)| id)
            .collect();
        let mut events = Vec::new();
        for id in expired {
            events.extend(self.expire_session(id));
        }
        events
    }

    /// Forcibly expires a session (e.g. the simulator killing a process).
    pub fn expire_session(&mut self, session: SessionId) -> Vec<WatchEvent> {
        self.sessions.remove(&session);
        let owned: Vec<String> = self
            .znodes
            .iter()
            .filter(|(_, z)| z.owner == Some(session))
            .map(|(p, _)| p.clone())
            .collect();
        let mut events = Vec::new();
        // Delete deepest-first so parents empty out before their own delete.
        for path in owned.into_iter().rev() {
            if let Ok(ev) = self.delete(&path) {
                events.extend(ev);
            }
        }
        events
    }

    /// Creates a znode. For sequential modes the returned path carries the
    /// zero-padded sequence suffix.
    pub fn create(
        &mut self,
        path: &str,
        data: Vec<u8>,
        mode: CreateMode,
        session: Option<SessionId>,
    ) -> Result<(String, Vec<WatchEvent>), CoordError> {
        if !valid_path(path) || path == "/" {
            return Err(CoordError::BadPath);
        }
        if mode.is_ephemeral() {
            match session {
                Some(s) if self.sessions.contains_key(&s) => {}
                _ => return Err(CoordError::NoSession),
            }
        }
        let parent = parent_of(path).ok_or(CoordError::BadPath)?.to_string();
        if !self.znodes.contains_key(&parent) {
            return Err(CoordError::NoNode);
        }
        let actual = if mode.is_sequential() {
            let p = self.znodes.get_mut(&parent).expect("parent exists");
            let seq = p.seq_counter;
            p.seq_counter += 1;
            format!("{path}{seq:010}")
        } else {
            if self.znodes.contains_key(path) {
                return Err(CoordError::NodeExists);
            }
            path.to_string()
        };
        self.znodes.insert(
            actual.clone(),
            Znode {
                data,
                version: 0,
                owner: if mode.is_ephemeral() { session } else { None },
                seq_counter: 0,
            },
        );
        let mut events = self.fire(&actual, EventKind::Created, &[WatchType::Exists]);
        events.extend(self.fire(&parent, EventKind::ChildrenChanged, &[WatchType::Children]));
        Ok((actual, events))
    }

    /// Deletes a childless znode.
    pub fn delete(&mut self, path: &str) -> Result<Vec<WatchEvent>, CoordError> {
        if !self.znodes.contains_key(path) {
            return Err(CoordError::NoNode);
        }
        if self.children(path)?.next().is_some() {
            return Err(CoordError::NotEmpty);
        }
        self.znodes.remove(path);
        let mut events = self.fire(
            path,
            EventKind::Deleted,
            &[WatchType::Exists, WatchType::Data],
        );
        if let Some(parent) = parent_of(path) {
            let parent = parent.to_string();
            events.extend(self.fire(&parent, EventKind::ChildrenChanged, &[WatchType::Children]));
        }
        Ok(events)
    }

    /// Replaces a znode's data, bumping its version.
    pub fn set_data(&mut self, path: &str, data: Vec<u8>) -> Result<Vec<WatchEvent>, CoordError> {
        let z = self.znodes.get_mut(path).ok_or(CoordError::NoNode)?;
        z.data = data;
        z.version += 1;
        Ok(self.fire(path, EventKind::DataChanged, &[WatchType::Data]))
    }

    /// Reads a znode's data.
    pub fn get_data(&self, path: &str) -> Result<&[u8], CoordError> {
        self.znodes
            .get(path)
            .map(|z| z.data.as_slice())
            .ok_or(CoordError::NoNode)
    }

    /// Reads a znode's metadata.
    pub fn stat(&self, path: &str) -> Result<Stat, CoordError> {
        self.znodes
            .get(path)
            .map(|z| Stat {
                version: z.version,
                owner: z.owner,
            })
            .ok_or(CoordError::NoNode)
    }

    /// Whether a znode exists.
    pub fn exists(&self, path: &str) -> bool {
        self.znodes.contains_key(path)
    }

    /// Iterates the *names* (full paths) of `path`'s direct children, in
    /// lexicographic order.
    pub fn children<'a>(
        &'a self,
        path: &'a str,
    ) -> Result<impl Iterator<Item = &'a str> + 'a, CoordError> {
        if !self.znodes.contains_key(path) {
            return Err(CoordError::NoNode);
        }
        let prefix = if path == "/" {
            String::from("/")
        } else {
            format!("{path}/")
        };
        let range_start = prefix.clone();
        let prefix2 = prefix.clone();
        Ok(self
            .znodes
            .range(range_start..)
            .take_while(move |(p, _)| p.starts_with(&prefix))
            .filter(move |(p, _)| {
                let rest = &p[prefix2.len()..];
                !rest.is_empty() && !rest.contains('/')
            })
            .map(|(p, _)| p.as_str()))
    }

    /// Collects children into a Vec (convenience).
    pub fn children_vec(&self, path: &str) -> Result<Vec<String>, CoordError> {
        Ok(self.children(path)?.map(|s| s.to_string()).collect())
    }

    /// Registers a one-shot watch fired when `path` is created or deleted.
    pub fn watch_exists(&mut self, path: &str, watcher: WatcherId) {
        self.watches
            .entry(path.to_string())
            .or_default()
            .push((watcher, WatchType::Exists));
    }

    /// Registers a one-shot watch fired when `path`'s data changes or it is
    /// deleted.
    pub fn watch_data(&mut self, path: &str, watcher: WatcherId) {
        self.watches
            .entry(path.to_string())
            .or_default()
            .push((watcher, WatchType::Data));
    }

    /// Registers a one-shot watch fired when `path`'s children change.
    pub fn watch_children(&mut self, path: &str, watcher: WatcherId) {
        self.watches
            .entry(path.to_string())
            .or_default()
            .push((watcher, WatchType::Children));
    }

    fn fire(&mut self, path: &str, kind: EventKind, types: &[WatchType]) -> Vec<WatchEvent> {
        let Some(list) = self.watches.get_mut(path) else {
            return Vec::new();
        };
        let mut fired = Vec::new();
        list.retain(|(watcher, ty)| {
            if types.contains(ty) {
                fired.push(WatchEvent {
                    path: path.to_string(),
                    kind,
                    watcher: *watcher,
                });
                false // one-shot
            } else {
                true
            }
        });
        if list.is_empty() {
            self.watches.remove(path);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Coord {
        Coord::new()
    }

    #[test]
    fn create_get_set_delete_cycle() {
        let mut z = c();
        let (p, _) = z
            .create("/a", b"one".to_vec(), CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(p, "/a");
        assert_eq!(z.get_data("/a").unwrap(), b"one");
        assert_eq!(z.stat("/a").unwrap().version, 0);
        z.set_data("/a", b"two".to_vec()).unwrap();
        assert_eq!(z.get_data("/a").unwrap(), b"two");
        assert_eq!(z.stat("/a").unwrap().version, 1);
        z.delete("/a").unwrap();
        assert_eq!(z.get_data("/a").unwrap_err(), CoordError::NoNode);
    }

    #[test]
    fn create_requires_parent_and_uniqueness() {
        let mut z = c();
        assert_eq!(
            z.create("/x/y", vec![], CreateMode::Persistent, None)
                .unwrap_err(),
            CoordError::NoNode
        );
        z.create("/x", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/x/y", vec![], CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(
            z.create("/x", vec![], CreateMode::Persistent, None)
                .unwrap_err(),
            CoordError::NodeExists
        );
    }

    #[test]
    fn bad_paths_rejected() {
        let mut z = c();
        for p in ["", "a", "/a/", "//a", "/"] {
            assert_eq!(
                z.create(p, vec![], CreateMode::Persistent, None)
                    .unwrap_err(),
                CoordError::BadPath,
                "path {p:?}"
            );
        }
    }

    #[test]
    fn delete_with_children_refused() {
        let mut z = c();
        z.create("/a", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/a/b", vec![], CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(z.delete("/a").unwrap_err(), CoordError::NotEmpty);
        z.delete("/a/b").unwrap();
        z.delete("/a").unwrap();
    }

    #[test]
    fn sequential_nodes_get_increasing_suffixes() {
        let mut z = c();
        z.create("/q", vec![], CreateMode::Persistent, None)
            .unwrap();
        let (p1, _) = z
            .create("/q/n-", vec![], CreateMode::PersistentSequential, None)
            .unwrap();
        let (p2, _) = z
            .create("/q/n-", vec![], CreateMode::PersistentSequential, None)
            .unwrap();
        assert_eq!(p1, "/q/n-0000000000");
        assert_eq!(p2, "/q/n-0000000001");
        assert!(p1 < p2);
    }

    #[test]
    fn children_enumeration_is_direct_only_and_sorted() {
        let mut z = c();
        z.create("/a", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/a/c", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/a/b", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/a/b/deep", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/ab", vec![], CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(z.children_vec("/a").unwrap(), vec!["/a/b", "/a/c"]);
        assert_eq!(z.children_vec("/").unwrap(), vec!["/a", "/ab"]);
    }

    #[test]
    fn ephemerals_die_with_their_session() {
        let mut z = c();
        let s = z.create_session(0, 100);
        z.create("/live", vec![], CreateMode::Ephemeral, Some(s))
            .unwrap();
        assert!(z.exists("/live"));
        z.heartbeat(s, 50).unwrap();
        assert!(!z.tick(140).is_empty() || z.exists("/live"));
        // At t=140 heartbeat(50)+timeout(100)=150 >= 140 -> still alive.
        assert!(z.exists("/live"));
        z.tick(151);
        assert!(!z.exists("/live"), "session expiry must delete ephemerals");
        assert!(!z.session_alive(s));
        assert_eq!(z.heartbeat(s, 160).unwrap_err(), CoordError::NoSession);
    }

    #[test]
    fn ephemeral_without_session_rejected() {
        let mut z = c();
        assert_eq!(
            z.create("/e", vec![], CreateMode::Ephemeral, None)
                .unwrap_err(),
            CoordError::NoSession
        );
    }

    #[test]
    fn exists_watch_fires_once_on_create_and_delete() {
        let mut z = c();
        let w = WatcherId(1);
        z.watch_exists("/a", w);
        let (_, ev) = z
            .create("/a", vec![], CreateMode::Persistent, None)
            .unwrap();
        assert_eq!(
            ev,
            vec![WatchEvent {
                path: "/a".into(),
                kind: EventKind::Created,
                watcher: w
            }]
        );
        // One-shot: the delete does not re-fire unless re-registered.
        let ev = z.delete("/a").unwrap();
        assert!(ev.is_empty());
    }

    #[test]
    fn data_watch_fires_on_set_and_delete() {
        let mut z = c();
        z.create("/d", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.watch_data("/d", WatcherId(7));
        let ev = z.set_data("/d", b"x".to_vec()).unwrap();
        assert_eq!(ev[0].kind, EventKind::DataChanged);
        z.watch_data("/d", WatcherId(7));
        let ev = z.delete("/d").unwrap();
        assert_eq!(ev[0].kind, EventKind::Deleted);
    }

    #[test]
    fn children_watch_fires_on_membership_change() {
        let mut z = c();
        z.create("/servers", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.watch_children("/servers", WatcherId(3));
        let (_, ev) = z
            .create("/servers/s1", vec![], CreateMode::Persistent, None)
            .unwrap();
        assert!(ev
            .iter()
            .any(|e| e.path == "/servers" && e.kind == EventKind::ChildrenChanged));
    }

    #[test]
    fn session_expiry_fires_watches_on_ephemerals() {
        let mut z = c();
        let s = z.create_session(0, 10);
        z.create("/servers", vec![], CreateMode::Persistent, None)
            .unwrap();
        z.create("/servers/shard0", vec![], CreateMode::Ephemeral, Some(s))
            .unwrap();
        z.watch_exists("/servers/shard0", WatcherId(9));
        z.watch_children("/servers", WatcherId(9));
        let ev = z.tick(100);
        assert!(ev
            .iter()
            .any(|e| e.kind == EventKind::Deleted && e.path == "/servers/shard0"));
        assert!(ev
            .iter()
            .any(|e| e.kind == EventKind::ChildrenChanged && e.path == "/servers"));
    }

    #[test]
    fn forced_expiry_cleans_nested_ephemerals() {
        let mut z = c();
        let s = z.create_session(0, 1_000);
        z.create("/a", vec![], CreateMode::Ephemeral, Some(s))
            .unwrap();
        z.create("/a/b", vec![], CreateMode::Ephemeral, Some(s))
            .unwrap();
        let _ = z.expire_session(s);
        assert!(!z.exists("/a"));
        assert!(!z.exists("/a/b"));
    }
}
