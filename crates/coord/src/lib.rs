//! ZooKeeper-like coordination kernel for HydraDB's HA layer (§5.1).
//!
//! The paper deploys a 3–5 node ZooKeeper ensemble whose *semantics* —
//! a znode tree with ephemeral/sequential nodes, sessions that expire on
//! missed heartbeats, and one-shot watches — drive the SWAT (Status Watcher
//! and reAct Team) failure-reaction pipeline. This crate implements those
//! semantics as a deterministic state machine driven by explicit timestamps,
//! so it runs identically under the discrete-event simulator and in
//! plain unit tests. The replicated-consensus internals of ZooKeeper are out
//! of scope (DESIGN.md §1): HydraDB only consumes the client-visible API.
//!
//! [`election`] builds the standard ephemeral-sequential leader-election
//! recipe on top, used both for the SWAT leader and for primary-shard
//! fail-over ordering.

pub mod election;
pub mod tree;

pub use election::LeaderElection;
pub use tree::{Coord, CoordError, CreateMode, EventKind, SessionId, Stat, WatchEvent, WatcherId};
