//! Property tests for the coordination kernel: arbitrary operation
//! sequences must preserve the tree invariants ZooKeeper guarantees.

use hydra_coord::{Coord, CoordError, CreateMode, SessionId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Create(u8, u8, bool), // parent-slot, name-slot, ephemeral
    Delete(u8, u8),
    SetData(u8, u8, Vec<u8>),
    Heartbeat(u8),
    Tick(u64),
    ExpireSession(u8),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u8>(), any::<bool>()).prop_map(|(p, n, e)| Op::Create(
                p % 4,
                n % 8,
                e
            )),
            (any::<u8>(), any::<u8>()).prop_map(|(p, n)| Op::Delete(p % 4, n % 8)),
            (
                any::<u8>(),
                any::<u8>(),
                proptest::collection::vec(any::<u8>(), 0..16)
            )
                .prop_map(|(p, n, d)| Op::SetData(p % 4, n % 8, d)),
            any::<u8>().prop_map(|s| Op::Heartbeat(s % 3)),
            (1u64..200).prop_map(Op::Tick),
            any::<u8>().prop_map(|s| Op::ExpireSession(s % 3)),
        ],
        1..200,
    )
}

fn parent_path(p: u8) -> String {
    match p {
        0 => "/a".to_string(),
        1 => "/b".to_string(),
        2 => "/a/sub".to_string(),
        _ => "/".to_string(),
    }
}

fn child_path(p: u8, n: u8) -> String {
    let parent = parent_path(p);
    if parent == "/" {
        format!("/n{n}")
    } else {
        format!("{parent}/n{n}")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_invariants_hold(ops in ops()) {
        let mut c = Coord::new();
        let mut now = 0u64;
        let sessions: Vec<SessionId> = (0..3).map(|_| c.create_session(0, 100)).collect();
        c.create("/a", vec![], CreateMode::Persistent, None).unwrap();
        c.create("/b", vec![], CreateMode::Persistent, None).unwrap();
        c.create("/a/sub", vec![], CreateMode::Persistent, None).unwrap();

        for op in ops {
            match op {
                Op::Create(p, n, eph) => {
                    let path = child_path(p, n);
                    let mode = if eph { CreateMode::Ephemeral } else { CreateMode::Persistent };
                    let session = if eph { Some(sessions[(n % 3) as usize]) } else { None };
                    match c.create(&path, vec![n], mode, session) {
                        Ok((actual, _)) => prop_assert_eq!(actual, path),
                        Err(CoordError::NodeExists | CoordError::NoNode | CoordError::NoSession) => {}
                        Err(e) => prop_assert!(false, "unexpected {e:?}"),
                    }
                }
                Op::Delete(p, n) => {
                    let path = child_path(p, n);
                    match c.delete(&path) {
                        Ok(_) | Err(CoordError::NoNode) | Err(CoordError::NotEmpty) => {}
                        Err(e) => prop_assert!(false, "unexpected {e:?}"),
                    }
                }
                Op::SetData(p, n, d) => {
                    let path = child_path(p, n);
                    let before = c.stat(&path).map(|s| s.version);
                    match c.set_data(&path, d.clone()) {
                        Ok(_) => {
                            prop_assert_eq!(c.get_data(&path).unwrap(), d.as_slice());
                            prop_assert_eq!(
                                c.stat(&path).unwrap().version,
                                before.unwrap() + 1,
                                "version must bump"
                            );
                        }
                        Err(CoordError::NoNode) => {}
                        Err(e) => prop_assert!(false, "unexpected {e:?}"),
                    }
                }
                Op::Heartbeat(s) => {
                    let _ = c.heartbeat(sessions[s as usize], now);
                }
                Op::Tick(dt) => {
                    now += dt;
                    c.tick(now);
                }
                Op::ExpireSession(s) => {
                    c.expire_session(sessions[s as usize]);
                }
            }
            // Invariant 1: every node's parent exists.
            for parent in ["/a", "/b", "/a/sub"] {
                if let Ok(children) = c.children_vec(parent) {
                    for ch in children {
                        prop_assert!(c.exists(&ch));
                        prop_assert!(c.exists(parent));
                    }
                }
            }
            // Invariant 2: expired sessions own nothing.
            for (i, &s) in sessions.iter().enumerate() {
                if !c.session_alive(s) {
                    for parent in ["/", "/a", "/b", "/a/sub"] {
                        if let Ok(children) = c.children_vec(parent) {
                            for ch in children {
                                if let Ok(st) = c.stat(&ch) {
                                    prop_assert_ne!(
                                        st.owner,
                                        Some(s),
                                        "dead session {} still owns {}",
                                        i,
                                        ch
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sequential_numbers_strictly_increase(n in 2usize..30) {
        let mut c = Coord::new();
        c.create("/q", vec![], CreateMode::Persistent, None).unwrap();
        let mut last = String::new();
        for _ in 0..n {
            let (p, _) = c.create("/q/x-", vec![], CreateMode::PersistentSequential, None).unwrap();
            prop_assert!(p > last, "{p} !> {last}");
            last = p;
        }
        prop_assert_eq!(c.children_vec("/q").unwrap().len(), n);
    }
}
