//! Operation history recording and consistency checking.
//!
//! The recorder is a cheap `Rc` handle threaded through instrumented
//! clients; every op logs its invocation and response on the virtual clock.
//! Checks run after the run settles:
//!
//! * [`History::check_linearizable`] — per-key *register* linearizability:
//!   there must exist a total order of the ops on each key, consistent with
//!   real time (if op A's response precedes op B's invocation, A orders
//!   before B), in which every successful read returns the latest written
//!   value. Failed or unresolved writes are *maybe-applied*: the search may
//!   include or exclude them. Failed reads constrain nothing.
//! * [`History::check_reads_observed_writes`] — value integrity: a read may
//!   only ever return bytes some client actually wrote to that key (or
//!   "absent"). A torn RDMA read that slipped past the guardian word, or a
//!   stale value fetched through a dangling cached pointer after lease
//!   expiry, shows up here even when the interleaving happens to make the
//!   stale value linearizable.
//! * [`check_convergence`] — replica equality: after heal + settle, every
//!   replica of a partition must hold an identical key→value map.
//!
//! Violations carry the run's seed; failing runs reproduce with
//! `HYDRA_SEED=<seed>`.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;

use hydra_sim::time::SimTime;

/// What kind of op a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    Get,
    Insert,
    Update,
    Put,
    Delete,
}

impl OpKind {
    fn is_write(self) -> bool {
        !matches!(self, OpKind::Get)
    }
}

/// How an op ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Still in flight when the run ended. Writes are maybe-applied; reads
    /// constrain nothing.
    Pending,
    /// Completed successfully. For a `Get`, carries the observed value
    /// (`None` = key absent); for writes the payload is `None`.
    Ok(Option<Vec<u8>>),
    /// Failed (timeout or server error). A failed write is maybe-applied —
    /// the request may have executed after the client gave up — so it gets
    /// an unbounded effect window.
    Failed,
}

/// One recorded client op.
#[derive(Debug, Clone)]
pub struct OpRecord {
    pub client: u32,
    pub kind: OpKind,
    pub key: Vec<u8>,
    /// The written value for `Insert`/`Update`/`Put` (`None` for `Delete`
    /// and `Get`).
    pub value: Option<Vec<u8>>,
    pub invoke: SimTime,
    pub response: Option<SimTime>,
    pub outcome: Outcome,
}

struct HistoryInner {
    seed: u64,
    records: Vec<OpRecord>,
}

/// Shared handle to the op log. Clones are cheap and append to the same
/// history.
#[derive(Clone)]
pub struct History {
    inner: Rc<RefCell<HistoryInner>>,
}

/// A consistency-check failure. `Display` (and `Debug`, so `unwrap()`
/// failures are actionable) include the reproduction seed.
pub struct Violation {
    pub seed: u64,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} — reproduce with HYDRA_SEED={}",
            self.detail, self.seed
        )
    }
}

impl fmt::Debug for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl History {
    /// Creates an empty history tagged with the run's seed.
    pub fn new(seed: u64) -> Self {
        History {
            inner: Rc::new(RefCell::new(HistoryInner {
                seed,
                records: Vec::new(),
            })),
        }
    }

    /// The seed this history reproduces from.
    pub fn seed(&self) -> u64 {
        self.inner.borrow().seed
    }

    /// Records an invocation at `now`; returns the record id to close with
    /// [`end`](Self::end).
    pub fn begin(
        &self,
        client: u32,
        kind: OpKind,
        key: &[u8],
        value: Option<&[u8]>,
        now: SimTime,
    ) -> usize {
        let mut inner = self.inner.borrow_mut();
        inner.records.push(OpRecord {
            client,
            kind,
            key: key.to_vec(),
            value: value.map(|v| v.to_vec()),
            invoke: now,
            response: None,
            outcome: Outcome::Pending,
        });
        inner.records.len() - 1
    }

    /// Records the response for op `id` at `now`.
    pub fn end(&self, id: usize, now: SimTime, outcome: Outcome) {
        let mut inner = self.inner.borrow_mut();
        let r = &mut inner.records[id];
        debug_assert!(r.response.is_none(), "op completed twice");
        r.response = Some(now);
        r.outcome = outcome;
    }

    /// Number of ops invoked so far (including pending ones).
    pub fn len(&self) -> usize {
        self.inner.borrow().records.len()
    }

    /// Whether no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of ops that completed with `Outcome::Ok`.
    pub fn completed_ok(&self) -> usize {
        self.inner
            .borrow()
            .records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Ok(_)))
            .count()
    }

    /// Number of ops that failed.
    pub fn failed(&self) -> usize {
        self.inner
            .borrow()
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::Failed)
            .count()
    }

    /// A copy of the full op log.
    pub fn snapshot(&self) -> Vec<OpRecord> {
        self.inner.borrow().records.clone()
    }

    /// Checks per-key register linearizability over the recorded history.
    pub fn check_linearizable(&self) -> Result<(), Violation> {
        let inner = self.inner.borrow();
        for (key, ops) in group_by_key(&inner.records) {
            if ops.len() > 128 {
                return Err(Violation {
                    seed: inner.seed,
                    detail: format!(
                        "key {:?}: {} ops exceed the checker's 128-op-per-key budget; \
                         spread the workload over more keys",
                        String::from_utf8_lossy(key),
                        ops.len()
                    ),
                });
            }
            if !linearizable(&ops) {
                return Err(Violation {
                    seed: inner.seed,
                    detail: format!(
                        "history of key {:?} is not linearizable:\n{}",
                        String::from_utf8_lossy(key),
                        render_ops(&ops)
                    ),
                });
            }
        }
        Ok(())
    }

    /// Checks that every successful read of each key returned either a
    /// value some client wrote to that key (at any time, by any op,
    /// including failed ones) or "absent". Catches torn and stale reads
    /// independently of ordering.
    pub fn check_reads_observed_writes(&self) -> Result<(), Violation> {
        let inner = self.inner.borrow();
        let mut written: HashMap<&[u8], HashSet<&[u8]>> = HashMap::new();
        for r in &inner.records {
            if r.kind.is_write() {
                if let Some(v) = &r.value {
                    written.entry(&r.key).or_default().insert(v);
                }
            }
        }
        for r in &inner.records {
            if r.kind != OpKind::Get {
                continue;
            }
            if let Outcome::Ok(Some(v)) = &r.outcome {
                let ok = written
                    .get(r.key.as_slice())
                    .is_some_and(|s| s.contains(v.as_slice()));
                if !ok {
                    return Err(Violation {
                        seed: inner.seed,
                        detail: format!(
                            "read of key {:?} at t={} returned {:?}, which no client ever wrote \
                             (torn or stale value)",
                            String::from_utf8_lossy(&r.key),
                            r.invoke,
                            String::from_utf8_lossy(v)
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One replica's contents for the convergence checker: a label naming the
/// replica in violations, plus its sorted `(key, value)` items.
pub type ReplicaDump = (String, Vec<(Vec<u8>, Vec<u8>)>);

/// Checks that every replica dump holds the same key→value map.
pub fn check_convergence(seed: u64, replicas: &[ReplicaDump]) -> Result<(), Violation> {
    let Some((ref_label, reference)) = replicas.first() else {
        return Ok(());
    };
    for (label, dump) in &replicas[1..] {
        if dump.len() != reference.len() {
            return Err(Violation {
                seed,
                detail: format!(
                    "replica divergence: {ref_label} holds {} items but {label} holds {}",
                    reference.len(),
                    dump.len()
                ),
            });
        }
        for ((rk, rv), (dk, dv)) in reference.iter().zip(dump) {
            if rk != dk || rv != dv {
                return Err(Violation {
                    seed,
                    detail: format!(
                        "replica divergence on key {:?}: {ref_label} has ({:?}, {:?}), \
                         {label} has ({:?}, {:?})",
                        String::from_utf8_lossy(rk),
                        String::from_utf8_lossy(rk),
                        String::from_utf8_lossy(rv),
                        String::from_utf8_lossy(dk),
                        String::from_utf8_lossy(dv),
                    ),
                });
            }
        }
    }
    Ok(())
}

/// One key's op, reduced to what the register checker needs.
struct KeyOp {
    invoke: SimTime,
    /// `SimTime::MAX` when the effect window is unbounded (pending, or a
    /// failed write that may have executed after the client gave up).
    response: SimTime,
    is_write: bool,
    /// Must appear in the linearization (definite writes and successful
    /// reads). Maybe-applied writes are optional.
    must: bool,
    /// Written value for writes (`None` = delete/absent); observed value
    /// for reads.
    value: Option<Vec<u8>>,
}

fn group_by_key(records: &[OpRecord]) -> HashMap<&[u8], Vec<KeyOp>> {
    let mut by_key: HashMap<&[u8], Vec<KeyOp>> = HashMap::new();
    for r in records {
        let op = if r.kind.is_write() {
            let definite = matches!(r.outcome, Outcome::Ok(_));
            KeyOp {
                invoke: r.invoke,
                response: if definite {
                    r.response.expect("ok op has a response")
                } else {
                    SimTime::MAX
                },
                is_write: true,
                must: definite,
                value: r.value.clone(),
            }
        } else {
            match &r.outcome {
                Outcome::Ok(observed) => KeyOp {
                    invoke: r.invoke,
                    response: r.response.expect("ok op has a response"),
                    is_write: false,
                    must: true,
                    value: observed.clone(),
                },
                // Failed/pending reads constrain nothing; drop them.
                _ => continue,
            }
        };
        by_key.entry(&r.key).or_default().push(op);
    }
    by_key
}

/// Wing & Gong search: try to extend a linearization one minimal op at a
/// time, memoizing visited (linearized-set, register) states. `u128` mask
/// caps keys at 128 ops, enforced by the caller.
fn linearizable(ops: &[KeyOp]) -> bool {
    let n = ops.len();
    let all_must: u128 = ops
        .iter()
        .enumerate()
        .filter(|(_, o)| o.must)
        .fold(0, |m, (i, _)| m | (1 << i));
    // Register state: index of the last linearized write, n = initial
    // (absent).
    let mut memo: HashSet<(u128, usize)> = HashSet::new();
    let mut stack: Vec<(u128, usize)> = vec![(0, n)];
    while let Some((mask, reg)) = stack.pop() {
        if mask & all_must == all_must {
            return true;
        }
        if !memo.insert((mask, reg)) {
            continue;
        }
        for i in 0..n {
            if mask & (1 << i) != 0 {
                continue;
            }
            // Real-time order: `i` may go next only if no other pending op
            // already responded before `i` was invoked.
            let blocked = (0..n).any(|j| {
                j != i && mask & (1 << j) == 0 && ops[j].must && ops[j].response < ops[i].invoke
            });
            if blocked {
                continue;
            }
            if ops[i].is_write {
                stack.push((mask | (1 << i), i));
            } else {
                let current = if reg == n { &None } else { &ops[reg].value };
                if *current == ops[i].value {
                    stack.push((mask | (1 << i), reg));
                }
            }
        }
    }
    false
}

fn render_ops(ops: &[KeyOp]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let mut sorted: Vec<&KeyOp> = ops.iter().collect();
    sorted.sort_by_key(|o| o.invoke);
    for o in sorted {
        let resp = if o.response == SimTime::MAX {
            "?".to_string()
        } else {
            o.response.to_string()
        };
        let _ = writeln!(
            s,
            "  [{:>12} .. {:>12}] {} {} {:?}",
            o.invoke,
            resp,
            if o.is_write { "write" } else { "read " },
            if o.must { "definite" } else { "maybe   " },
            o.value.as_ref().map(|v| String::from_utf8_lossy(v)),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> History {
        History::new(42)
    }

    fn write(h: &History, key: &[u8], val: &[u8], t0: SimTime, t1: SimTime) {
        let id = h.begin(0, OpKind::Put, key, Some(val), t0);
        h.end(id, t1, Outcome::Ok(None));
    }

    fn read(h: &History, key: &[u8], saw: Option<&[u8]>, t0: SimTime, t1: SimTime) {
        let id = h.begin(0, OpKind::Get, key, None, t0);
        h.end(id, t1, Outcome::Ok(saw.map(|v| v.to_vec())));
    }

    #[test]
    fn sequential_history_linearizes() {
        let h = h();
        write(&h, b"k", b"a", 0, 10);
        read(&h, b"k", Some(b"a"), 20, 30);
        write(&h, b"k", b"b", 40, 50);
        read(&h, b"k", Some(b"b"), 60, 70);
        read(&h, b"k2", None, 60, 70);
        h.check_linearizable().unwrap();
        h.check_reads_observed_writes().unwrap();
    }

    #[test]
    fn stale_read_after_overwrite_is_flagged() {
        let h = h();
        write(&h, b"k", b"a", 0, 10);
        write(&h, b"k", b"b", 20, 30);
        // Reads strictly after the overwrite responded must not see "a".
        read(&h, b"k", Some(b"a"), 40, 50);
        assert!(h.check_linearizable().is_err());
        // ... but the value itself was once written, so the integrity check
        // alone does not fire.
        h.check_reads_observed_writes().unwrap();
    }

    #[test]
    fn torn_read_is_flagged_by_integrity_check() {
        let h = h();
        write(&h, b"k", b"aaaa", 0, 10);
        read(&h, b"k", Some(b"aaXX"), 20, 30);
        let err = h.check_reads_observed_writes().unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("HYDRA_SEED=42"),
            "violation must print seed: {msg}"
        );
    }

    #[test]
    fn concurrent_writes_allow_either_order() {
        let h = h();
        // Two overlapping writes; a later read may see either winner.
        let w1 = h.begin(0, OpKind::Put, b"k", Some(b"x"), 0);
        let w2 = h.begin(1, OpKind::Put, b"k", Some(b"y"), 5);
        h.end(w1, 20, Outcome::Ok(None));
        h.end(w2, 25, Outcome::Ok(None));
        read(&h, b"k", Some(b"x"), 30, 40);
        h.check_linearizable().unwrap();
    }

    #[test]
    fn failed_write_is_maybe_applied() {
        // A timed-out overwrite may or may not have landed — even *after*
        // its timeout fired — so a later read may see either value.
        let h2 = History::new(1);
        write(&h2, b"k", b"a", 0, 10);
        let w = h2.begin(0, OpKind::Put, b"k", Some(b"b"), 20);
        h2.end(w, 30, Outcome::Failed);
        read(&h2, b"k", Some(b"a"), 40, 50);
        h2.check_linearizable().unwrap();
        let h3 = History::new(2);
        write(&h3, b"k", b"a", 0, 10);
        let w = h3.begin(0, OpKind::Put, b"k", Some(b"b"), 20);
        h3.end(w, 30, Outcome::Failed);
        read(&h3, b"k", Some(b"b"), 40, 50);
        h3.check_linearizable().unwrap();
    }

    #[test]
    fn value_resurrection_after_delete_is_flagged() {
        let h = h();
        write(&h, b"k", b"a", 0, 10);
        let d = h.begin(0, OpKind::Delete, b"k", None, 20);
        h.end(d, 30, Outcome::Ok(None));
        read(&h, b"k", Some(b"a"), 40, 50);
        assert!(h.check_linearizable().is_err());
        let h2 = History::new(9);
        write(&h2, b"k", b"a", 0, 10);
        let d = h2.begin(0, OpKind::Delete, b"k", None, 20);
        h2.end(d, 30, Outcome::Ok(None));
        read(&h2, b"k", None, 40, 50);
        h2.check_linearizable().unwrap();
    }

    #[test]
    fn pending_ops_do_not_block_later_ops() {
        let h = h();
        // A write that never responds can linearize arbitrarily late: read
        // "b", then the pending "a" lands, then read "a". Valid.
        h.begin(0, OpKind::Put, b"k", Some(b"a"), 0);
        write(&h, b"k", b"b", 100, 110);
        read(&h, b"k", Some(b"b"), 120, 130);
        read(&h, b"k", Some(b"a"), 140, 150);
        h.check_linearizable().unwrap();
        // But it cannot linearize *early*: w(b) responded before the first
        // read was invoked, so "a" then "b" has no valid order.
        let h2 = History::new(3);
        h2.begin(0, OpKind::Put, b"k", Some(b"a"), 0);
        write(&h2, b"k", b"b", 100, 110);
        read(&h2, b"k", Some(b"a"), 120, 130);
        read(&h2, b"k", Some(b"b"), 140, 150);
        assert!(h2.check_linearizable().is_err());
    }

    #[test]
    fn convergence_check_compares_sorted_dumps() {
        let a = (
            "p0/primary".to_string(),
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), b"v2".to_vec()),
            ],
        );
        let same = ("p0/sec0".to_string(), a.1.clone());
        check_convergence(7, &[a.clone(), same]).unwrap();
        let diff = (
            "p0/sec0".to_string(),
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), b"XX".to_vec()),
            ],
        );
        let err = check_convergence(7, &[a, diff]).unwrap_err();
        assert!(format!("{err}").contains("HYDRA_SEED=7"));
    }

    #[test]
    fn read_concurrent_with_write_may_see_old_or_new() {
        for saw in [Some(b"new".as_slice()), None] {
            let h = History::new(5);
            let w = h.begin(0, OpKind::Insert, b"k", Some(b"new"), 0);
            let r = h.begin(1, OpKind::Get, b"k", None, 5);
            h.end(r, 8, Outcome::Ok(saw.map(|v| v.to_vec())));
            h.end(w, 10, Outcome::Ok(None));
            h.check_linearizable()
                .unwrap_or_else(|e| panic!("saw={saw:?}: {e}"));
        }
    }
}
