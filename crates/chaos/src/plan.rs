//! Fault plans: seed-reproducible schedules of injected failures.

use hydra_sim::time::SimTime;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// When a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// At a virtual time (nanoseconds on the sim clock).
    At(SimTime),
    /// When the recorded history reaches this many invoked client ops.
    /// Op-count triggers pin a fault to a point in the *workload* rather
    /// than the clock, which is what directed tests (crash exactly between
    /// op N and N+1) need.
    AtOp(u64),
}

/// One injectable failure. Node arguments index the cluster's server nodes
/// (0-based); the applying layer maps them to fabric node ids.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Power-fail a server machine: its NIC engines freeze and all traffic
    /// from or to it vanishes on the wire. Every shard hosted on the node
    /// (primary or secondary) goes dark.
    CrashNode { node: usize },
    /// Bring a crashed machine back. Shards that were promoted away are
    /// rebuilt as fresh secondaries from the current primary's state;
    /// stale secondaries are resynced.
    RestartNode { node: usize },
    /// Isolate `nodes` from every other machine (servers and clients).
    /// The coordination service stays reachable — HydraDB models it as an
    /// external quorum service — but primary heartbeats from isolated
    /// nodes stop, so their sessions expire and SWAT fails over.
    Partition { nodes: Vec<usize> },
    /// Remove every partition cut and transient link fault.
    Heal,
    /// Drop the next `count` messages flowing `from -> to`.
    DropMessage { from: usize, to: usize, count: u32 },
    /// Delay the next `count` messages flowing `from -> to` by `delay_ns`.
    DelayMessage {
        from: usize,
        to: usize,
        delay_ns: SimTime,
        count: u32,
    },
    /// Redeliver the next `count` messages flowing `from -> to` (the
    /// duplicated copy lands just behind the original, as after an RC
    /// retransmit).
    DuplicateMessage { from: usize, to: usize, count: u32 },
    /// Multiply a node's NIC service times by `factor` (1.0 restores full
    /// speed).
    SlowNode { node: usize, factor: f64 },
    /// Force the store to reclaim every deferred block of a partition's
    /// primary immediately, as if all read leases had expired. Outstanding
    /// cached remote pointers now dangle; the guardian word is all that
    /// stands between a fast-path reader and a stale value.
    ExpireLease { partition: u32 },
    /// Kill just the primary server process of one partition (the classic
    /// `kill_primary` fault): the process stops serving and heartbeating
    /// but the machine and its other shards stay up.
    CrashPrimary { partition: u32 },
    /// Expire the SWAT leader's coordination session, forcing a watcher
    /// re-election before any subsequent failover can proceed.
    ExpireSwatLeader,
    /// Make one partition's replication appliers fail to process record
    /// `seq` (secondary-side processing fault, PAPER.md §5.2): the
    /// secondary discards from the gap on and the primary must roll back
    /// and resend.
    FailReplApply { partition: u32, seq: u64 },
    /// Bring a brand-new machine online hosting `shards` new partitions and
    /// start a live join migration toward it. Scripted-only (never emitted
    /// by [`FaultPlan::random`]): elasticity events are directed scenarios,
    /// not background noise.
    JoinNode { shards: u32 },
    /// Start a live drain migration moving every primary off server node
    /// `node` so it can leave the cluster. Scripted-only, like `JoinNode`.
    DrainNode { node: usize },
}

/// A fault pinned to its trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedFault {
    pub trigger: Trigger,
    pub fault: FaultEvent,
}

/// A deterministic schedule of faults. Plans are inert data until handed to
/// the cluster's chaos controller.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed this plan derives from; printed by every checker failure.
    pub seed: u64,
    pub faults: Vec<PlannedFault>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` for reproduction messages.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault at virtual time `at`.
    pub fn at(mut self, at: SimTime, fault: FaultEvent) -> Self {
        self.faults.push(PlannedFault {
            trigger: Trigger::At(at),
            fault,
        });
        self
    }

    /// Adds a fault firing once `ops` client ops have been invoked.
    pub fn at_op(mut self, ops: u64, fault: FaultEvent) -> Self {
        self.faults.push(PlannedFault {
            trigger: Trigger::AtOp(ops),
            fault,
        });
        self
    }

    /// Derives a random-but-replayable plan: one to three fault episodes
    /// (crash/restart, partition/heal, drop, delay, duplicate, slow) over
    /// `server_nodes` machines and `partitions` shards, all disruption
    /// opening after `horizon_ns / 10` and every opened episode closed
    /// (restarted, healed, restored) by `0.8 * horizon_ns`, so a run that
    /// drives traffic for `horizon_ns` and then settles can check replica
    /// convergence.
    pub fn random(seed: u64, server_nodes: usize, partitions: u32, horizon_ns: SimTime) -> Self {
        assert!(server_nodes >= 2, "chaos plans need at least two nodes");
        assert!(partitions >= 1);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FF_EE00_D15E_A5ED);
        let mut plan = FaultPlan::new(seed);
        let open_lo = horizon_ns / 10;
        let open_hi = horizon_ns / 2;
        let close_by = horizon_ns - horizon_ns / 5;
        let episodes = rng.gen_range(1..=3u32);
        for _ in 0..episodes {
            let t0 = rng.gen_range(open_lo..open_hi);
            let t1 = rng.gen_range((t0 + horizon_ns / 20)..close_by);
            match rng.gen_range(0..6u32) {
                0 => {
                    let node = rng.gen_range(0..server_nodes);
                    plan = plan
                        .at(t0, FaultEvent::CrashNode { node })
                        .at(t1, FaultEvent::RestartNode { node });
                }
                1 => {
                    // A random nonempty proper subset of the machines.
                    let mut nodes: Vec<usize> =
                        (0..server_nodes).filter(|_| rng.gen_bool(0.5)).collect();
                    if nodes.is_empty() {
                        nodes.push(rng.gen_range(0..server_nodes));
                    }
                    if nodes.len() == server_nodes {
                        nodes.pop();
                    }
                    plan = plan
                        .at(t0, FaultEvent::Partition { nodes })
                        .at(t1, FaultEvent::Heal);
                }
                2 => {
                    let (from, to) = distinct_pair(&mut rng, server_nodes);
                    plan = plan.at(
                        t0,
                        FaultEvent::DropMessage {
                            from,
                            to,
                            count: rng.gen_range(1..=12u32),
                        },
                    );
                }
                3 => {
                    let (from, to) = distinct_pair(&mut rng, server_nodes);
                    plan = plan.at(
                        t0,
                        FaultEvent::DelayMessage {
                            from,
                            to,
                            delay_ns: rng.gen_range(5_000u64..200_000),
                            count: rng.gen_range(1..=50u32),
                        },
                    );
                }
                4 => {
                    let (from, to) = distinct_pair(&mut rng, server_nodes);
                    plan = plan.at(
                        t0,
                        FaultEvent::DuplicateMessage {
                            from,
                            to,
                            count: rng.gen_range(1..=8u32),
                        },
                    );
                }
                _ => {
                    let node = rng.gen_range(0..server_nodes);
                    plan = plan
                        .at(
                            t0,
                            FaultEvent::SlowNode {
                                node,
                                factor: 2.0 + rng.gen::<f64>() * 6.0,
                            },
                        )
                        .at(t1, FaultEvent::SlowNode { node, factor: 1.0 });
                }
            }
        }
        if rng.gen_bool(0.5) {
            let t = rng.gen_range(open_lo..close_by);
            plan = plan.at(
                t,
                FaultEvent::ExpireLease {
                    partition: rng.gen_range(0..partitions),
                },
            );
        }
        // Belt and braces: whatever the episodes did to the network, the
        // final act heals it so convergence is checkable.
        plan = plan.at(close_by, FaultEvent::Heal);
        plan.faults.sort_by_key(|f| match f.trigger {
            Trigger::At(t) => (0, t),
            Trigger::AtOp(n) => (1, n),
        });
        plan
    }

    /// The latest `Trigger::At` time in the plan (0 for pure op-count
    /// plans); callers drive the sim past this before checking convergence.
    pub fn last_event_at(&self) -> SimTime {
        self.faults
            .iter()
            .filter_map(|f| match f.trigger {
                Trigger::At(t) => Some(t),
                Trigger::AtOp(_) => None,
            })
            .max()
            .unwrap_or(0)
    }
}

fn distinct_pair(rng: &mut SmallRng, n: usize) -> (usize, usize) {
    let from = rng.gen_range(0..n);
    let to = (from + rng.gen_range(1..n)) % n;
    (from, to)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_replay_from_their_seed() {
        let a = FaultPlan::random(99, 3, 3, 400_000_000);
        let b = FaultPlan::random(99, 3, 3, 400_000_000);
        assert_eq!(a, b);
        let c = FaultPlan::random(100, 3, 3, 400_000_000);
        assert_ne!(a, c, "different seeds must give different plans");
        assert!(!a.faults.is_empty());
    }

    #[test]
    fn random_plans_close_every_episode_within_the_horizon() {
        for seed in 0..200u64 {
            let horizon = 500_000_000;
            let plan = FaultPlan::random(seed, 4, 4, horizon);
            let mut crashes: std::collections::HashMap<usize, i32> = Default::default();
            let mut slows: std::collections::HashMap<usize, i32> = Default::default();
            let mut cut_open = false;
            for f in &plan.faults {
                let t = match f.trigger {
                    Trigger::At(t) => t,
                    Trigger::AtOp(_) => panic!("random plans are time-triggered"),
                };
                assert!(t <= horizon, "event beyond horizon");
                match &f.fault {
                    FaultEvent::CrashNode { node } => *crashes.entry(*node).or_default() += 1,
                    FaultEvent::RestartNode { node } => *crashes.entry(*node).or_default() -= 1,
                    FaultEvent::Partition { nodes } => {
                        assert!(!nodes.is_empty() && nodes.len() < 4);
                        cut_open = true;
                    }
                    FaultEvent::Heal => cut_open = false,
                    FaultEvent::SlowNode { node, factor } => {
                        *slows.entry(*node).or_default() += if *factor == 1.0 { -1 } else { 1 };
                    }
                    _ => {}
                }
            }
            assert!(
                crashes.values().all(|&c| c == 0),
                "seed {seed}: crash without matching restart"
            );
            assert!(
                slows.values().all(|&s| s == 0),
                "seed {seed}: slowdown without matching restore"
            );
            assert!(!cut_open, "seed {seed}: partition left open");
        }
    }

    #[test]
    fn builder_orders_are_preserved_and_triggers_typed() {
        let plan = FaultPlan::new(7)
            .at(100, FaultEvent::CrashPrimary { partition: 0 })
            .at_op(50, FaultEvent::ExpireSwatLeader);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.faults[0].trigger, Trigger::At(100));
        assert_eq!(plan.faults[1].trigger, Trigger::AtOp(50));
        assert_eq!(plan.last_event_at(), 100);
    }
}
