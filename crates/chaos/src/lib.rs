//! Deterministic fault injection and consistency checking.
//!
//! HydraDB's headline claim is *resilience*: SWAT failure detection, lease
//! guarded one-sided reads and RDMA-logged replication all exist to survive
//! failures (PAPER.md §4.2.3, §5). This crate is the adversary that earns
//! that claim: it turns "the cluster survives failures" from a happy-path
//! example into a checked property.
//!
//! Two halves:
//!
//! * [`plan`] — a **fault plan**: a seed-reproducible schedule of fault
//!   events ([`FaultEvent`]) pinned to virtual times or op-count triggers
//!   ([`Trigger`]). Plans are plain data; the `hydra-db` crate owns the
//!   machinery that applies them to a live cluster through the fabric and
//!   simulator fault hooks. [`FaultPlan::random`] derives an arbitrarily
//!   nasty but *replayable* plan from a seed.
//! * [`history`] — a **history checker**: every client op is recorded with
//!   its invocation/response times on the virtual clock, and the resulting
//!   history is verified for per-key register linearizability (Wing & Gong
//!   style DFS with memoization), value integrity (no read returns bytes
//!   that were never written — the torn/stale-read lease-safety check) and
//!   replica convergence after heal.
//!
//! Every check failure prints the seed that produced it; re-running with
//! `HYDRA_SEED=<seed>` reproduces the run event for event.

pub mod history;
pub mod plan;

pub use history::{check_convergence, History, OpKind, OpRecord, Outcome, ReplicaDump, Violation};
pub use plan::{FaultEvent, FaultPlan, PlannedFault, Trigger};
