//! Figure 10 — incremental evaluation of the RDMA design choices on the six
//! YCSB workloads: Send/Recv baseline, then RDMA-Write message passing, then
//! remote-pointer RDMA-Read GETs on top; plus the pipelined execution model
//! of §6.2.1 (which uses 4x the cores yet loses to single-threaded shards).

use hydra_bench::{design_points, paper_cluster_config, paper_workloads, Report, ReportRow, Scale};
use hydra_db::ExecModel;

fn main() {
    let scale = Scale::from_env();
    let clients = 50;
    let mut report = Report::new(
        "fig10_incremental",
        "Fig. 10: incremental RDMA design choices (throughput, Mops)",
    );
    report.line(&format!(
        "{:<16} {:>12} {:>16} {:>18} {:>20}",
        "workload", "Send/Recv", "RDMA Write Only", "RDMA Write + Read", "Pipeline + Write"
    ));
    for (name, wl) in paper_workloads(scale, 10) {
        let mut row = Vec::new();
        for (_, mode) in design_points() {
            let cfg = hydra_db::ClusterConfig {
                client_mode: mode,
                ..paper_cluster_config()
            };
            let r = hydra_bench::run_hydra(cfg, clients, &wl);
            report.datum(&format!("{name}/{mode:?}"), ReportRow::from(&r));
            row.push(r.mops);
        }
        // Pipelined ablation: RDMA Write messages, decoupled detect/handle,
        // 2 workers + dispatcher per shard (4x the cores of single-threaded).
        let pipe_cfg = hydra_db::ClusterConfig {
            client_mode: hydra_db::ClientMode::RdmaWrite,
            exec_model: ExecModel::Pipelined { workers: 2 },
            ..paper_cluster_config()
        };
        let pipe = hydra_bench::run_hydra(pipe_cfg, clients, &wl);
        report.datum(&format!("{name}/Pipelined"), ReportRow::from(&pipe));
        report.line(&format!(
            "{:<16} {:>12.3} {:>16.3} {:>18.3} {:>20.3}",
            name, row[0], row[1], row[2], pipe.mops
        ));
        report.line(&format!(
            "{:<16}   write vs send/recv: {:+.1}% | +read vs write: {:+.1}% | single vs pipelined: {:+.1}%",
            "",
            (row[1] / row[0] - 1.0) * 100.0,
            (row[2] / row[1] - 1.0) * 100.0,
            (row[1] / pipe.mops - 1.0) * 100.0,
        ));
    }
    report.save();
}
