//! Mixed read plane: tail-latency isolation of point GETs from range scans.
//!
//! Three cluster runs over the same hybrid-indexed paper topology, all with
//! message-path GETs (`ClientMode::RdmaWrite`) so every point op crosses the
//! shard core and actually contends with the scan plane:
//!
//! 1. **pure-point** — `workload_mix(ratio = 1.0)`: 100% point GETs under
//!    the dual-lane scheduler. The uncontended baseline p99.
//! 2. **mix / Fifo** — `workload_mix(ratio = 0.5)`: 50% GETs + 50% scans on
//!    the legacy FIFO run queue. Point ops queue behind whole scan
//!    dispatches, inflating the GET tail.
//! 3. **mix / DualLane** — the same mix under deficit-round-robin lanes with
//!    preemptible scan chunks.
//!
//! Acceptance (the PR's headline floors):
//! * mixed point-GET p99 under DualLane stays within **2x** the pure-point
//!   p99 — scans no longer own the tail;
//! * DualLane scan throughput stays at **>= 0.9x** the FIFO run — isolation
//!   is not bought by starving the scan plane.

use hydra_bench::{paper_cluster, paper_cluster_config, Report, Scale};
use hydra_db::{ClientMode, ClusterConfig, IndexKind, SchedulerKind};
use hydra_ycsb::{run_workload, DriverConfig, Workload, WorkloadReport};

fn mix_cluster_config(scheduler: SchedulerKind) -> ClusterConfig {
    ClusterConfig {
        index: IndexKind::Hybrid,
        client_mode: ClientMode::RdmaWrite,
        scheduler,
        ..paper_cluster_config()
    }
}

fn run(scheduler: SchedulerKind, wl: &Workload) -> WorkloadReport {
    let (mut cluster, clients) = paper_cluster(mix_cluster_config(scheduler), 50);
    run_workload(&mut cluster.sim, &clients, wl, &DriverConfig::default())
}

/// Completed scans per second of virtual time.
fn scan_rate(r: &WorkloadReport) -> f64 {
    r.scans as f64 / (r.elapsed_ns as f64 / 1e9).max(1e-9)
}

fn main() {
    let scale = Scale::from_env();
    let records = scale.records();
    let ops = scale.ops();
    let seed = hydra_sim::seed_from_env(31);

    let mut report = Report::new(
        "BENCH_mix",
        "Mixed read plane: dual-lane tail isolation vs FIFO (50% GET / 50% SCAN)",
    );
    report.line(&format!(
        "# {records} records, {ops} ops per run; message-path GETs; scans <=100 items"
    ));

    let pure_wl = Workload::workload_mix(records, ops, seed, 1.0);
    let mix_wl = Workload::workload_mix(records, ops, seed, 0.5);

    let pure = run(SchedulerKind::DualLane, &pure_wl);
    let fifo = run(SchedulerKind::Fifo, &mix_wl);
    let dual = run(SchedulerKind::DualLane, &mix_wl);

    report.line(&format!(
        "{:<18} {:>10} {:>12} {:>12} {:>14}",
        "run", "mops", "get_p99_us", "scan_p99_us", "scans_per_sec"
    ));
    for (name, r) in [
        ("pure-point", &pure),
        ("mix-fifo", &fifo),
        ("mix-dual", &dual),
    ] {
        report.line(&format!(
            "{:<18} {:>10.3} {:>12.2} {:>12.2} {:>14.0}",
            name,
            r.mops,
            r.get_p99_us,
            r.scan_p99_us,
            scan_rate(r)
        ));
        assert_eq!(r.errors, 0, "{name}: run must be error-free");
    }

    let p99_blowup_fifo = fifo.get_p99_us / pure.get_p99_us.max(1e-9);
    let p99_blowup_dual = dual.get_p99_us / pure.get_p99_us.max(1e-9);
    let scan_ratio = scan_rate(&dual) / scan_rate(&fifo).max(1e-9);

    report.line(&format!(
        "# point-GET p99 blowup vs pure-point: fifo {p99_blowup_fifo:.2}x, dual-lane {p99_blowup_dual:.2}x"
    ));
    report.line(&format!(
        "# dual-lane scan throughput holds {scan_ratio:.3}x of fifo"
    ));

    report.datum("pure_point_get_p99_us", pure.get_p99_us);
    report.datum("mix_fifo_get_p99_us", fifo.get_p99_us);
    report.datum("mix_dual_get_p99_us", dual.get_p99_us);
    report.datum("p99_blowup_fifo", p99_blowup_fifo);
    report.datum("p99_blowup_dual", p99_blowup_dual);
    report.datum("fifo_scans_per_s", scan_rate(&fifo));
    report.datum("dual_scans_per_s", scan_rate(&dual));
    report.datum("scan_throughput_ratio", scan_ratio);
    report.datum("mix_fifo_mops", fifo.mops);
    report.datum("mix_dual_mops", dual.mops);

    assert!(
        p99_blowup_dual <= 2.0,
        "acceptance: mixed point-GET p99 under DualLane must stay within 2x of \
         pure-point (got {p99_blowup_dual:.2}x, {:.2}us vs {:.2}us)",
        dual.get_p99_us,
        pure.get_p99_us
    );
    assert!(
        scan_ratio >= 0.9,
        "acceptance: DualLane scan throughput must hold >=0.9x of FIFO \
         (got {scan_ratio:.3}x)"
    );
    report.save();
}
