//! Recovery-time benchmark (BENCH_chaos): for each injected fault type,
//! measure the three phases of HydraDB's resilience story (§5.1) on the
//! virtual clock —
//!
//! * **detection**: fault injection → the primary's coordination session is
//!   observed expired (missed SWAT heartbeats);
//! * **failover**: fault injection → SWAT has promoted a secondary and
//!   published the new partition map;
//! * **first op**: fault injection → a client write against the failed
//!   partition completes successfully again (full client-visible outage).
//!
//! Faults come from the hydra-chaos plan vocabulary and are injected through
//! the cluster's chaos controller, exactly as the consistency tests do.
//! `HYDRA_SEED` repins the run.

use std::cell::Cell;
use std::rc::Rc;

use hydra_bench::{results_dir, Report};
use hydra_chaos::FaultEvent;
use hydra_db::{Cluster, ClusterBuilder, ClusterConfig, ReplicationMode, ShardId};
use hydra_sim::time::{MS, SEC, US};

/// A key that the consistent-hash ring routes to `partition`.
fn key_for_partition(cluster: &Cluster, partition: u32) -> Vec<u8> {
    let dir = cluster.directory.borrow();
    for i in 0..100_000u32 {
        let k = format!("bench-probe-{i:06}").into_bytes();
        if dir.ring.route(&k) == Some(ShardId(partition)) {
            return k;
        }
    }
    panic!("no key routes to partition {partition}");
}

struct Timings {
    detection_us: f64,
    failover_us: f64,
    first_op_us: f64,
    /// One-sided GETs of a warmed key that completed successfully between
    /// fault injection and promotion. A process crash leaves the machine's
    /// memory readable over RDMA, so fast-path readers sail through the
    /// outage; a machine crash or partition takes the fast path down with
    /// the message path (§4.2.3's availability story, measured).
    reads_in_outage: u64,
}

/// Builds a fresh 3-machine, 2-partition, 1-replica Strict cluster, injects
/// `faults` against partition 0 at `inject_at` (varying the phase relative
/// to the heartbeat/tick period across trials), and measures the phases.
fn measure(seed: u64, faults: &[FaultEvent], inject_at: u64) -> Timings {
    let cfg = ClusterConfig {
        seed,
        server_nodes: 3,
        partitions: Some(2),
        client_nodes: 1,
        replicas: 1,
        replication: ReplicationMode::Strict,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterBuilder::new(cfg).build();
    cluster.enable_ha(10 * SEC);
    let client = cluster.add_client(0);
    let probe_key = key_for_partition(&cluster, 0);

    // Seed the partition and warm a reader's remote-pointer cache (two GETs:
    // the first learns the pointer, the second takes the one-sided path).
    let reader = cluster.add_client(0);
    let warm = Rc::new(Cell::new(false));
    let w = warm.clone();
    let (r1, k1) = (reader.clone(), probe_key.clone());
    client.put(
        &mut cluster.sim,
        &probe_key,
        b"pre-fault",
        Box::new(move |sim, r| {
            r.expect("warm write succeeds");
            let (r2, k2) = (r1.clone(), k1.clone());
            r1.get(
                sim,
                &k1,
                Box::new(move |sim, r| {
                    r.expect("warm read succeeds");
                    r2.get(
                        sim,
                        &k2,
                        Box::new(move |_, r| {
                            r.expect("warm fast read succeeds");
                            w.set(true);
                        }),
                    );
                }),
            );
        }),
    );
    cluster.sim.run_until(inject_at);
    assert!(warm.get());

    let chaos = cluster.chaos();
    // Failover replaces the partition's session; watch the pre-fault one to
    // catch the expiry (detection) instant itself.
    let pre_fault_session = cluster.session_id(0);
    let t0 = cluster.sim.now();
    for f in faults {
        chaos.apply(&mut cluster.sim, f);
    }

    // Closed-loop fast-path reader running through the outage: counts
    // lease-guarded one-sided GETs that still complete while the primary is
    // failed but not yet replaced.
    let reads_ok = Rc::new(Cell::new(0u64));
    let reads_stop = Rc::new(Cell::new(false));
    fn read_loop(
        sim: &mut hydra_sim::Sim,
        client: hydra_db::HydraClient,
        key: Vec<u8>,
        ok: Rc<Cell<u64>>,
        stop: Rc<Cell<bool>>,
    ) {
        if stop.get() {
            return;
        }
        let (c2, k2, o2, s2) = (client.clone(), key.clone(), ok.clone(), stop.clone());
        client.get(
            sim,
            &key,
            Box::new(move |sim, r| {
                if r.is_ok() && !s2.get() {
                    o2.set(o2.get() + 1);
                }
                read_loop(sim, c2, k2, o2, s2);
            }),
        );
    }
    read_loop(
        &mut cluster.sim,
        reader,
        probe_key.clone(),
        reads_ok.clone(),
        reads_stop.clone(),
    );

    // Phase 1: session expiry observed (step the virtual clock finely so
    // the measurement granularity is 50 µs, well under the timings).
    while cluster.session_alive_id(pre_fault_session) {
        let t = cluster.sim.now() + 50 * US;
        cluster.sim.run_until(t);
        assert!(cluster.sim.now() - t0 < 5 * SEC, "detection never happened");
    }
    let detection = cluster.sim.now() - t0;

    // Phase 2: promotion published.
    while cluster.promotions() == 0 {
        let t = cluster.sim.now() + 50 * US;
        cluster.sim.run_until(t);
        assert!(cluster.sim.now() - t0 < 5 * SEC, "failover never happened");
    }
    let failover = cluster.sim.now() - t0;
    let reads_in_outage = reads_ok.get();
    reads_stop.set(true);

    // Phase 3: first successful client op against the failed partition.
    // Retry the write until it lands on the promoted primary (the client
    // discovers the new map through its timeout path).
    let first_ok: Rc<Cell<u64>> = Rc::new(Cell::new(0));
    fn attempt(
        sim: &mut hydra_sim::Sim,
        client: hydra_db::HydraClient,
        key: Vec<u8>,
        first_ok: Rc<Cell<u64>>,
    ) {
        let c2 = client.clone();
        let k2 = key.clone();
        let f2 = first_ok.clone();
        client.put(
            sim,
            &key,
            b"post-fault",
            Box::new(move |sim, r| match r {
                Ok(_) => f2.set(sim.now()),
                Err(_) => attempt(sim, c2, k2, f2),
            }),
        );
    }
    attempt(&mut cluster.sim, client, probe_key, first_ok.clone());
    while first_ok.get() == 0 {
        let t = cluster.sim.now() + 50 * US;
        cluster.sim.run_until(t);
        assert!(cluster.sim.now() - t0 < 5 * SEC, "service never recovered");
    }
    let first_op = first_ok.get() - t0;

    Timings {
        detection_us: detection as f64 / 1_000.0,
        failover_us: failover as f64 / 1_000.0,
        first_op_us: first_op as f64 / 1_000.0,
        reads_in_outage,
    }
}

fn main() {
    let seed = hydra_sim::seed_from_env(42);
    let mut report = Report::new(
        "BENCH_chaos",
        "Recovery timeline per fault type (virtual clock)",
    );
    report.line(&format!("# seed={seed} (set HYDRA_SEED to repin)"));
    report.line(
        "# 3 machines, 2 partitions, 1 sync replica; heartbeat 5 ms, session \
         timeout 25 ms, SWAT tick 10 ms; 8 trials de-phased across the tick",
    );
    report.line(
        "# *_us columns in microseconds; outage_reads = one-sided GETs of a \
         warmed key completing during the fault-to-promotion window",
    );
    report.line(&format!(
        "{:<24} {:>12} {:>12} {:>13} {:>13} {:>12} {:>13}",
        "fault",
        "detect_mean",
        "detect_max",
        "failover_mean",
        "first_op_mean",
        "first_op_max",
        "outage_reads"
    ));
    report.datum("seed", seed);

    let cases: Vec<(&str, Vec<FaultEvent>)> = vec![
        (
            "crash_primary",
            vec![FaultEvent::CrashPrimary { partition: 0 }],
        ),
        ("crash_node", vec![FaultEvent::CrashNode { node: 0 }]),
        (
            "partition_node",
            vec![FaultEvent::Partition { nodes: vec![0] }],
        ),
        (
            "swat_leader_then_crash",
            vec![
                FaultEvent::ExpireSwatLeader,
                FaultEvent::CrashPrimary { partition: 0 },
            ],
        ),
    ];
    // De-phase the injection instant against the 10 ms tick: real faults
    // don't align with the detector, so the timings below sweep the phase.
    let trials: Vec<u64> = (0..8u64).map(|i| 50 * MS + i * 1_300 * US).collect();
    for (name, faults) in cases {
        let runs: Vec<Timings> = trials
            .iter()
            .map(|&at| measure(seed, &faults, at))
            .collect();
        let mean =
            |f: fn(&Timings) -> f64| -> f64 { runs.iter().map(f).sum::<f64>() / runs.len() as f64 };
        let max = |f: fn(&Timings) -> f64| -> f64 { runs.iter().map(f).fold(0.0, f64::max) };
        let (dm, dx) = (mean(|t| t.detection_us), max(|t| t.detection_us));
        let fm = mean(|t| t.failover_us);
        let (om, ox) = (mean(|t| t.first_op_us), max(|t| t.first_op_us));
        let reads: u64 = runs.iter().map(|t| t.reads_in_outage).sum::<u64>() / runs.len() as u64;
        report.line(&format!(
            "{name:<24} {dm:>12.1} {dx:>12.1} {fm:>13.1} {om:>13.1} {ox:>12.1} {reads:>13}"
        ));
        report.datum(
            name,
            serde_json::json!({
                "detection_mean_us": dm,
                "detection_max_us": dx,
                "failover_mean_us": fm,
                "first_op_mean_us": om,
                "first_op_max_us": ox,
                "outage_reads_mean": reads,
                "trials": runs.len(),
            }),
        );
    }
    report.line(&format!(
        "# wrote {}/BENCH_chaos.{{txt,json}}",
        results_dir().display()
    ));
    report.save();
}
