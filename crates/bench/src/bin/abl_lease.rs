//! A-LEASE ablation (§4.2.3) — lease-deferred reclamation under an
//! update-heavy stream with concurrent one-sided readers: every fast read
//! must resolve to the current value or a detected stale (never silent
//! corruption), while reclamation promptly recycles memory once leases lapse.
//!
//! Sweeps the lease term: shorter leases reclaim sooner (lower memory
//! pinned) but shrink the fast-path window; longer leases pin more dead
//! bytes between update bursts.

use hydra_bench::{one_workload, paper_cluster_config, Report, Scale};
use hydra_db::ClusterConfig;
use hydra_sim::time::MS;
use hydra_ycsb::{run_workload, DriverConfig, Workload};

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "abl_lease",
        "A-LEASE: lease term vs fast-path effectiveness and memory pinned by dead items",
    );
    report.line(&format!(
        "{:<14} {:>10} {:>12} {:>14} {:>16} {:>16}",
        "lease", "Mops", "hit_rate", "invalid_hits", "reclaimed_blks", "peak_pinned_blks"
    ));
    for (label, min_l, max_l) in [
        ("1ms-64ms", MS, 64 * MS),
        ("10ms-640ms", 10 * MS, 640 * MS),
        ("1s-64s", 1_000 * MS, 64_000 * MS),
    ] {
        let cfg = ClusterConfig {
            min_lease_ns: min_l,
            max_lease_ns: max_l,
            ..paper_cluster_config()
        };
        let wl = Workload {
            ops: (scale.ops() / 2).max(10_000),
            ..one_workload(scale, 0.5, true, 31)
        };
        let nodes = cfg.client_nodes as usize;
        let mut cluster = hydra_db::ClusterBuilder::new(cfg).build();
        let clients: Vec<_> = (0..50).map(|i| cluster.add_client(i % nodes)).collect();
        let r = run_workload(&mut cluster.sim, &clients, &wl, &DriverConfig::default());
        let fast = r.rptr_hits + r.invalid_hits;
        let hit_rate = if fast + r.msg_gets == 0 {
            0.0
        } else {
            r.rptr_hits as f64 / (fast + r.msg_gets) as f64
        };
        let (mut reclaimed, mut peak) = (0u64, 0usize);
        for p in 0..cluster.cfg.total_shards() {
            let h = cluster.shard(p);
            let e = h.primary.borrow().engine.clone();
            let e = e.borrow();
            reclaimed += e.stats().reclaimed_blocks;
            peak += e.reclaim_peak().0;
        }
        report.line(&format!(
            "{:<14} {:>10.3} {:>11.1}% {:>14} {:>16} {:>16}",
            label,
            r.mops,
            hit_rate * 100.0,
            r.invalid_hits,
            reclaimed,
            peak
        ));
        report.datum(
            label,
            serde_json::json!({
                "mops": r.mops,
                "hit_rate": hit_rate,
                "invalid_hits": r.invalid_hits,
                "reclaimed_blocks": reclaimed,
                "peak_pinned_blocks": peak,
            }),
        );
        assert_eq!(r.errors, 0, "no reader may ever observe silent corruption");
    }
    report.line(
        "# all runs completed with zero corruption: every stale fast read was detected and retried",
    );
    report.save();
}
