//! T-SLEEP ablation (§4.2.1) — the sustained-polling CPU question: after a
//! bounded number of empty polls the shard issues a 100 ns high-resolution
//! sleep. This keeps CPU burn negligible under light load at a bounded
//! latency cost (half a sleep quantum of expected detection delay).
//!
//! The simulator charges request *processing* to the shard core and models
//! detection delay explicitly, so this report combines a measured part
//! (processing utilization, latency with/without the backoff) with the
//! analytic identity that a no-backoff polling loop occupies its core 100%
//! of the time by construction.

use hydra_bench::{one_workload, paper_cluster_config, Report, Scale};
use hydra_db::ClusterConfig;
use hydra_ycsb::{run_workload, DriverConfig};

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "abl_sleep",
        "T-SLEEP: poll-loop sleep backoff — CPU cost vs latency across offered load",
    );
    report.line(&format!(
        "{:<10} {:>12} {:>14} {:>14} {:>16} {:>16}",
        "clients", "Mops", "lat_sleep_us", "lat_spin_us", "cpu_sleep", "cpu_spin"
    ));
    for clients in [1usize, 2, 4, 8, 16, 32, 50] {
        let mut results = Vec::new();
        for sleep in [Some(100u64), None] {
            let cfg = ClusterConfig {
                sleep_backoff_ns: sleep,
                ..paper_cluster_config()
            };
            let wl = one_workload(scale, 0.9, true, 21);
            let wl = hydra_ycsb::Workload {
                ops: (scale.ops() / 4).max(4_000),
                ..wl
            };
            let nodes = cfg.client_nodes as usize;
            let mut cluster = hydra_db::ClusterBuilder::new(cfg).build();
            let cs: Vec<_> = (0..clients)
                .map(|i| cluster.add_client(i % nodes))
                .collect();
            let r = run_workload(&mut cluster.sim, &cs, &wl, &DriverConfig::default());
            // Processing utilization per shard core, derived from the
            // measured rate and the cost model (the simulator charges
            // exactly these costs to the core): rate/shard x mean op cost.
            let costs = &cluster.cfg.costs;
            let mean_cost = 0.9 * (costs.get_ns + costs.poll_ns) as f64
                + 0.1 * (costs.write_ns + costs.poll_ns + 2) as f64;
            let per_shard_rate = r.mops * 1e6 / cluster.cfg.total_shards() as f64;
            // RDMA-Read hits never touch the core.
            let served = r.msg_gets + r.invalid_hits; // server-handled gets
            let total_gets = served + r.rptr_hits;
            let offload = if total_gets == 0 {
                1.0
            } else {
                served as f64 / total_gets as f64
            };
            let proc_util = (per_shard_rate * mean_cost * 1e-9 * (0.1 + 0.9 * offload)).min(1.0);
            results.push((r, proc_util));
        }
        let (with_sleep, util_sleep) = &results[0];
        let (spin, _) = &results[1];
        report.line(&format!(
            "{:<10} {:>12.3} {:>14.2} {:>14.2} {:>15.1}% {:>16}",
            clients,
            spin.mops,
            with_sleep.get_mean_us,
            spin.get_mean_us,
            util_sleep * 100.0,
            "100% (spin)"
        ));
        report.datum(
            &format!("{clients}"),
            serde_json::json!({
                "mops": spin.mops,
                "lat_sleep_us": with_sleep.get_mean_us,
                "lat_spin_us": spin.get_mean_us,
                "cpu_processing_frac": util_sleep,
            }),
        );
    }
    report.line("# with backoff, CPU burn tracks offered load (negligible when idle); latency cost is <= sleep/2 per op");
    report.save();
}
