//! BENCH_skew — skew-resilient read plane: replica read spreading and the
//! bounded CLOCK pointer cache.
//!
//! Deployment: 3 server machines x 2 shards, 2 secondaries per partition
//! placed on the *other* two machines (the builder's `(home + r) % nodes`
//! rule), strict replication, 128 closed-loop clients (8 per client
//! machine, sharing each machine's pointer cache) in RDMA Write+Read mode.
//! One-sided reads are served by the target machine's NIC, so under
//! Zipfian skew the hot partition's NIC saturates first; exporting replica
//! remote pointers for hot keys lets clients round-robin fast-path reads
//! over three NICs instead of one.
//!
//! Two sweeps:
//!  * θ ∈ {0.5, 0.9, 0.99, 1.2} × spreading {off, on} at equal replication
//!    factor — the resilience-to-skew claim (floor: ≥ 1.3x GETs at θ=0.99,
//!    p99 no worse).
//!  * cache capacity at θ=0.99 with spreading on — the bounded CLOCK cache
//!    with sketch admission must stay within 10% of an effectively
//!    unbounded cache's fast-path hit rate.

use hydra_bench::{Report, ReportRow, Scale};
use hydra_db::server::HIST_BUCKETS;
use hydra_db::{ClientMode, Cluster, ClusterBuilder, ClusterConfig, HydraClient, ReplicationMode};
use hydra_ycsb::{run_workload, DriverConfig, KeyDist, Workload, WorkloadReport};

const CLIENTS: usize = 192;
const THETAS: [f64; 4] = [0.5, 0.9, 0.99, 1.2];
/// Larger than any scale's record count: eviction never fires.
const UNBOUNDED: usize = 1 << 21;

fn skew_config(spread: bool, cap: usize, scale: Scale) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        server_nodes: 6,
        shards_per_node: 1,
        client_nodes: 12,
        replicas: 3,
        replication: ReplicationMode::Strict,
        client_mode: ClientMode::RdmaWriteRead,
        shared_ptr_cache: true,
        replica_read_spread: spread,
        ptr_cache_capacity: cap,
        heat_sketch_cap: 512,
        hot_read_threshold: 2,
        arena_words: if scale == Scale::Paper {
            1 << 24
        } else {
            1 << 21
        },
        expected_items: 1 << 18,
        ..ClusterConfig::default()
    };
    // Replica QPs roughly double each server node's connection count; model
    // a NIC with a QP cache large enough for both arms so the comparison
    // isolates read spreading (QP-count scalability has its own study,
    // `abl_share`).
    cfg.fabric.qp_threshold = 1024;
    cfg
}

/// `records_div` shrinks the keyspace relative to the scale default: the
/// theta sweep uses a quarter keyspace so the shared caches warm within the
/// op budget (the claim is about *server-side* skew, not client cold
/// misses); the capacity sweep uses the full keyspace so the bounded cache
/// actually has to evict.
fn skew_workload(scale: Scale, theta: f64, records_div: u64) -> Workload {
    Workload {
        records: (scale.records() / records_div).max(1),
        ops: scale.ops(),
        read_ratio: 1.0,
        dist: KeyDist::Zipfian { theta },
        key_len: 16,
        value_len: 512,
        seed: hydra_sim::seed_from_env(71),
        mix: hydra_ycsb::OpMix::ReadUpdate,
    }
}

struct Point {
    r: WorkloadReport,
    replica_reads: u64,
    hit_rate: f64,
    queue_hist: [u64; HIST_BUCKETS],
    heat_hist: [u64; HIST_BUCKETS],
    exported_sets: u64,
    exported_ptrs: u64,
}

fn run_point(theta: f64, spread: bool, cap: usize, records_div: u64, scale: Scale) -> Point {
    let cfg = skew_config(spread, cap, scale);
    let shards = cfg.total_shards();
    let nodes = cfg.client_nodes as usize;
    let mut cluster: Cluster = ClusterBuilder::new(cfg).build();
    let clients: Vec<HydraClient> = (0..CLIENTS)
        .map(|i| cluster.add_client(i % nodes))
        .collect();
    let wl = skew_workload(scale, theta, records_div);
    // Long warmup: pointer caches fill on first GET per (cache, key), and
    // the steady state — not the cold-miss ramp — is what the skew claim is
    // about.
    let dcfg = DriverConfig {
        warmup_frac: 0.4,
        ..DriverConfig::default()
    };
    let r = run_workload(&mut cluster.sim, &clients, &wl, &dcfg);
    let replica_reads: u64 = clients.iter().map(|c| c.stats().replica_reads).sum();
    let hit_rate = r.rptr_hits as f64 / (r.rptr_hits + r.msg_gets).max(1) as f64;
    let mut queue_hist = [0u64; HIST_BUCKETS];
    let mut heat_hist = [0u64; HIST_BUCKETS];
    let (mut exported_sets, mut exported_ptrs) = (0u64, 0u64);
    for p in 0..shards {
        let handle = cluster.shard(p);
        let s = handle.primary.borrow();
        for (i, v) in s.stats().queue_depth_hist.iter().enumerate() {
            queue_hist[i] += v;
        }
        for (i, v) in s.read_heat_hist().iter().enumerate() {
            heat_hist[i] += v;
        }
        let (sets, ptrs) = s.export_counters();
        exported_sets += sets;
        exported_ptrs += ptrs;
    }
    Point {
        r,
        replica_reads,
        hit_rate,
        queue_hist,
        heat_hist,
        exported_sets,
        exported_ptrs,
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "BENCH_skew",
        "Skew-resilient read plane: replica read spreading + bounded CLOCK pointer cache",
    );

    // Sweep 1: skew x spreading at the default cache capacity.
    report.line(&format!(
        "{:<22} {:>8} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "theta/spread", "Mops", "get_us", "p99_us", "replica_rd", "hit_rate", "exp_ptrs"
    ));
    let default_cap = ClusterConfig::default().ptr_cache_capacity;
    let mut base_099 = 0.0;
    let mut spread_099 = 0.0;
    let mut p99_base_099 = 0.0;
    let mut p99_spread_099 = 0.0;
    for theta in THETAS {
        for spread in [false, true] {
            let pt = run_point(theta, spread, default_cap, 16, scale);
            let label = format!("θ={theta} {}", if spread { "spread" } else { "primary" });
            if (theta - 0.99).abs() < 1e-9 {
                if spread {
                    spread_099 = pt.r.mops;
                    p99_spread_099 = pt.r.get_p99_us;
                } else {
                    base_099 = pt.r.mops;
                    p99_base_099 = pt.r.get_p99_us;
                }
            }
            report.line(&format!(
                "{:<22} {:>8.3} {:>10.2} {:>10.2} {:>12} {:>10.3} {:>12}",
                label,
                pt.r.mops,
                pt.r.get_mean_us,
                pt.r.get_p99_us,
                pt.replica_reads,
                pt.hit_rate,
                pt.exported_ptrs
            ));
            let key = format!(
                "theta{}_{}",
                (theta * 100.0).round() as u32,
                if spread { "spread" } else { "primary" }
            );
            report.datum(&key, ReportRow::from(&pt.r));
            report.datum(&format!("{key}_replica_reads"), pt.replica_reads);
            report.datum(&format!("{key}_hit_rate"), pt.hit_rate);
            report.datum(&format!("{key}_exported_sets"), pt.exported_sets);
            report.datum(&format!("{key}_exported_ptrs"), pt.exported_ptrs);
            report.datum(&format!("{key}_queue_depth_hist"), pt.queue_hist.to_vec());
            report.datum(&format!("{key}_read_heat_hist"), pt.heat_hist.to_vec());
        }
    }
    let speedup = spread_099 / base_099.max(1e-12);
    report.line(&format!(
        "# speedup at θ=0.99, spread vs primary-only: {speedup:.2}x (floor 1.3x); \
         p99 {p99_spread_099:.2}us vs {p99_base_099:.2}us"
    ));
    report.datum("speedup_theta99", speedup);
    report.datum("p99_spread_theta99_us", p99_spread_099);
    report.datum("p99_primary_theta99_us", p99_base_099);

    // Sweep 2: cache capacity at θ=0.99 with spreading on. The unbounded
    // arm never evicts; the bounded arms rely on CLOCK + sketch admission
    // to keep the hot keys resident.
    report.line(&format!(
        "{:<22} {:>8} {:>10} {:>10} {:>12}",
        "capacity", "Mops", "get_us", "hit_rate", "cache_len<=cap"
    ));
    let mut bounded_hit = 0.0;
    let mut unbounded_hit = 0.0;
    for cap in [4096usize, 16384, default_cap, UNBOUNDED] {
        let pt = run_point(0.99, true, cap, 1, scale);
        if cap == default_cap {
            bounded_hit = pt.hit_rate;
        }
        if cap == UNBOUNDED {
            unbounded_hit = pt.hit_rate;
        }
        let label = if cap == UNBOUNDED {
            "unbounded".to_string()
        } else {
            format!("{cap}")
        };
        report.line(&format!(
            "{:<22} {:>8.3} {:>10.2} {:>10.3} {:>12}",
            label, pt.r.mops, pt.r.get_mean_us, pt.hit_rate, "yes"
        ));
        report.datum(&format!("cap_{label}"), ReportRow::from(&pt.r));
        report.datum(&format!("cap_{label}_hit_rate"), pt.hit_rate);
    }
    let hit_ratio = bounded_hit / unbounded_hit.max(1e-12);
    report.line(&format!(
        "# bounded (default cap) vs unbounded hit rate: {bounded_hit:.3} vs \
         {unbounded_hit:.3} ({hit_ratio:.3} of unbounded; floor 0.9)"
    ));
    report.datum("hit_rate_bounded", bounded_hit);
    report.datum("hit_rate_unbounded", unbounded_hit);
    report.datum("hit_rate_ratio", hit_ratio);
    report.save();

    assert!(
        speedup >= 1.3,
        "replica spreading must deliver >= 1.3x GETs at θ=0.99 ({speedup:.2}x)"
    );
    assert!(
        p99_spread_099 <= p99_base_099 * 1.05,
        "spreading must not worsen p99 ({p99_spread_099:.2}us vs {p99_base_099:.2}us)"
    );
    assert!(
        hit_ratio >= 0.9,
        "bounded cache must stay within 10% of unbounded hit rate ({hit_ratio:.3})"
    );
}
