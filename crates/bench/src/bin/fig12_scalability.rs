//! Figure 12 — scalability, four panels:
//! (a) scale-out, Uniform: 1–7 server machines, 1 shard each, 60 clients;
//! (b) scale-out, Zipfian: skew caps rebalancing at a saturation point;
//! (c) scale-up, Uniform: 1–8 shards on one machine (QP-count driver
//!     pressure eventually bites);
//! (d) scale-up, Zipfian.
//!
//! Throughput is normalized to the 1-server/1-shard case per workload, as in
//! the paper. Clients are collocated with the servers in the scale-out runs
//! (the 8-machine cluster has no spare nodes), which is what attenuates the
//! 100%-GET series.

use hydra_bench::{one_workload, Report, Scale};
use hydra_db::ClusterConfig;

const MIXES: [(&str, f64); 3] = [("50g-50u", 0.5), ("90g-10u", 0.9), ("100g", 1.0)];

fn run(cfg: ClusterConfig, wl: &hydra_ycsb::Workload, clients: usize) -> f64 {
    hydra_bench::run_hydra(cfg, clients, wl).mops
}

fn main() {
    let scale = Scale::from_env();
    let clients = 60;
    let mut report = Report::new(
        "fig12_scalability",
        "Fig. 12: scale-out and scale-up (normalized throughput)",
    );

    for (panel, zipf) in [
        ("(a) scale-out uniform", false),
        ("(b) scale-out zipfian", true),
    ] {
        report.line(&format!(
            "\n{panel}: servers 1..7, 1 shard each, 60 collocated clients"
        ));
        report.line(&format!(
            "{:<10} {:>8} {:>8} {:>8}",
            "servers", MIXES[0].0, MIXES[1].0, MIXES[2].0
        ));
        let mut base = [0.0f64; 3];
        for servers in 1..=7u32 {
            let mut row = Vec::new();
            for (mi, (_, ratio)) in MIXES.iter().enumerate() {
                let wl = one_workload(scale, *ratio, zipf, 12);
                let cfg = ClusterConfig {
                    server_nodes: servers,
                    shards_per_node: 1,
                    client_nodes: 1,
                    collocate_clients: true,
                    arena_words: 1 << 23,
                    expected_items: 1 << 20,
                    ..ClusterConfig::default()
                };
                let mops = run(cfg, &wl, clients);
                if servers == 1 {
                    base[mi] = mops;
                }
                row.push(mops / base[mi]);
                report.datum(&format!("{panel}/{}/{}", MIXES[mi].0, servers), mops);
            }
            report.line(&format!(
                "{:<10} {:>8.2} {:>8.2} {:>8.2}",
                servers, row[0], row[1], row[2]
            ));
        }
    }

    for (panel, zipf) in [
        ("(c) scale-up uniform", false),
        ("(d) scale-up zipfian", true),
    ] {
        report.line(&format!(
            "\n{panel}: shards 1..8 on one machine, 60 clients on 6 machines"
        ));
        report.line(&format!(
            "{:<10} {:>8} {:>8} {:>8}",
            "shards", MIXES[0].0, MIXES[1].0, MIXES[2].0
        ));
        let mut base = [0.0f64; 3];
        for shards in 1..=8u32 {
            let mut row = Vec::new();
            for (mi, (_, ratio)) in MIXES.iter().enumerate() {
                let wl = one_workload(scale, *ratio, zipf, 12);
                let cfg = ClusterConfig {
                    server_nodes: 1,
                    shards_per_node: shards,
                    client_nodes: 6,
                    arena_words: 1 << 23,
                    expected_items: 1 << 20,
                    ..ClusterConfig::default()
                };
                let mops = run(cfg, &wl, clients);
                if shards == 1 {
                    base[mi] = mops;
                }
                row.push(mops / base[mi]);
                report.datum(&format!("{panel}/{}/{}", MIXES[mi].0, shards), mops);
            }
            report.line(&format!(
                "{:<10} {:>8.2} {:>8.2} {:>8.2}",
                shards, row[0], row[1], row[2]
            ));
        }
    }
    report.save();
}
