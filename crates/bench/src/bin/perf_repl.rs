//! BENCH_repl — the group-commit write plane vs per-record strict acks.
//!
//! Two views of the same protocol change:
//!
//! 1. **Channel microbench** — a single [`ReplicationPair`] driven closed-
//!    loop at pipeline depth D. Per-record strict req/ack serializes one
//!    ring write + one ack round trip + one cold merge per record, so its
//!    throughput is pinned by `apply + ack` regardless of depth. Group
//!    commit ships doorbell-coalesced log quanta, lets one cumulative ack
//!    cover everything it has applied, and streams the backlog through the
//!    batched applier — depth converts directly into merge amortization.
//!
//! 2. **Cluster sweep** — the fig13 single-shard serving setup under a
//!    write-heavy YCSB workload (and YCSB-A for the mixed view), sweeping
//!    replication mode x replicas x client pipeline depth. Reports the
//!    strict-semantics write p50 (every completion gated on a covering
//!    ack) and the throughput ratio over per-record strict.
//!
//! Acceptance floors asserted at the bottom: group commit sustains >= 1.5x
//! the per-record strict record rate at channel depth 64, >= 1.3x cluster
//! write throughput at depth 64, and a strict-semantics write p50 <= 5.5 us
//! with one synchronous replica.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use hydra_bench::{one_workload, Report, Scale};
use hydra_db::{AimdConfig, ClusterBuilder, ClusterConfig, ReplicationMode};
use hydra_fabric::{Fabric, FabricConfig};
use hydra_replication::{replicate_strict, ReplConfig, ReplMode, ReplicationPair};
use hydra_sim::{Histogram, Sim};
use hydra_store::{EngineConfig, IndexKind, ShardEngine, WriteMode};
use hydra_wire::LogOp;
use hydra_ycsb::{run_workload, DriverConfig, Workload};

/// Mirrors the cluster's production channel: apply cost = the primary's
/// write cost, everything else at `ReplConfig` defaults.
const APPLY_COST_NS: u64 = 2_200;

struct PairBench {
    pair: ReplicationPair,
    issued: Cell<u64>,
    completed: Cell<u64>,
    total: u64,
    lat: RefCell<Histogram>,
    end: Cell<u64>,
    strict: bool,
    keys: Vec<Vec<u8>>,
}

fn issue(b: &Rc<PairBench>, sim: &mut Sim) {
    let i = b.issued.get();
    if i >= b.total {
        return;
    }
    b.issued.set(i + 1);
    let key = b.keys[(i as usize) % b.keys.len()].clone();
    let t0 = sim.now();
    let b2 = b.clone();
    let cb: Box<dyn FnOnce(&mut Sim)> = Box::new(move |sim: &mut Sim| {
        b2.lat.borrow_mut().record(sim.now().saturating_sub(t0));
        let done = b2.completed.get() + 1;
        b2.completed.set(done);
        if done == b2.total {
            b2.end.set(sim.now());
        }
        issue(&b2, sim);
    });
    let value = [0xCD; 32];
    if b.strict {
        replicate_strict(&b.pair, sim, LogOp::Put, &key, &value, cb).expect("record fits ring");
    } else {
        b.pair
            .replicate(sim, LogOp::Put, &key, &value, Some(cb))
            .expect("record fits ring");
    }
}

/// Closed-loop channel throughput at pipeline depth `depth`: records/sec
/// over virtual time plus the ack-gated completion latency distribution.
fn run_pair(mode: ReplMode, depth: usize, total: u64) -> (f64, f64, f64) {
    let mut sim = Sim::new(41);
    let fab = Fabric::new(FabricConfig::default());
    let p = fab.add_node();
    let s = fab.add_node();
    let engine = Rc::new(RefCell::new(ShardEngine::new(EngineConfig {
        arena_words: 1 << 22,
        expected_items: 1 << 14,
        index: IndexKind::Packed,
        write_mode: WriteMode::Reliable,
        min_lease_ns: 100,
        max_lease_ns: 6_400,
    })));
    let pair = ReplicationPair::new(
        &fab,
        p,
        s,
        engine,
        ReplConfig {
            ring_words: 1 << 18,
            mode,
            apply_cost_ns: APPLY_COST_NS,
            ..ReplConfig::default()
        },
    );
    let bench = Rc::new(PairBench {
        pair,
        issued: Cell::new(0),
        completed: Cell::new(0),
        total,
        lat: RefCell::new(Histogram::new()),
        end: Cell::new(0),
        strict: matches!(mode, ReplMode::Strict),
        keys: (0..1024u32)
            .map(|i| format!("repl-key-{i:06}").into_bytes())
            .collect(),
    });
    for _ in 0..depth {
        issue(&bench, &mut sim);
    }
    sim.run();
    assert_eq!(bench.completed.get(), total, "channel drained every record");
    let elapsed = bench.end.get().max(1);
    let mrecs = total as f64 / (elapsed as f64 / 1e9) / 1e6;
    let lat = bench.lat.borrow();
    (
        mrecs,
        lat.quantile(0.5) as f64 / 1_000.0,
        lat.quantile(0.99) as f64 / 1_000.0,
    )
}

/// Fig13-style serving setup: one shard, dedicated replica machines, the
/// replication channel as the only difference between arms. Total depth =
/// clients x window; AIMD stays off so the sweep controls the window, and
/// depth 1 is a true single closed-loop client (the latency gate's view).
fn cluster_run(
    mode: ReplicationMode,
    replicas: u32,
    clients: usize,
    window: usize,
    wl: &Workload,
) -> hydra_ycsb::WorkloadReport {
    let cfg = ClusterConfig {
        server_nodes: 1 + replicas.max(1),
        shards_per_node: 1,
        partitions: Some(1),
        client_nodes: 2,
        replicas,
        replication: mode,
        pipeline_depth: window,
        aimd: AimdConfig {
            enabled: false,
            ..AimdConfig::default()
        },
        arena_words: 1 << 23,
        expected_items: 1 << 20,
        repl_ring_words: 1 << 18,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterBuilder::new(cfg).build();
    let cl: Vec<_> = (0..clients).map(|i| cluster.add_client(i % 2)).collect();
    let dcfg = DriverConfig {
        window,
        ..DriverConfig::default()
    };
    run_workload(&mut cluster.sim, &cl, wl, &dcfg)
}

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "BENCH_repl",
        "Group-commit write plane: cumulative acks + pipelined replication vs per-record strict",
    );

    // Part 1: the replication channel in isolation.
    report.line("## channel microbench (one ReplicationPair, closed loop)");
    report.line(&format!(
        "{:<22} {:>6} {:>10} {:>10} {:>10}",
        "protocol", "depth", "Mrec/s", "p50_us", "p99_us"
    ));
    let total = (scale.ops() / 2).max(5_000);
    let mut strict_d64 = 0.0;
    let mut gc_d64 = 0.0;
    for (label, mode) in [
        ("strict req/ack", ReplMode::Strict),
        ("group commit", ReplMode::GroupCommit),
    ] {
        for depth in [1usize, 16, 64] {
            let (mrecs, p50, p99) = run_pair(mode, depth, total);
            if depth == 64 {
                match mode {
                    ReplMode::Strict => strict_d64 = mrecs,
                    _ => gc_d64 = mrecs,
                }
            }
            report.line(&format!(
                "{label:<22} {depth:>6} {mrecs:>10.3} {p50:>10.2} {p99:>10.2}"
            ));
            let k = if matches!(mode, ReplMode::Strict) {
                "strict"
            } else {
                "gc"
            };
            report.datum(&format!("pair/{k}/d{depth}/mrecs"), mrecs);
            report.datum(&format!("pair/{k}/d{depth}/p50_us"), p50);
        }
    }
    let pair_speedup = gc_d64 / strict_d64.max(1e-9);
    report.line(&format!(
        "# channel speedup at depth 64: {pair_speedup:.2}x (floor 1.5x)"
    ));
    report.datum("pair/speedup_d64", pair_speedup);

    // Part 2: end-to-end cluster sweep (write-heavy, then YCSB-A).
    report.line("");
    report.line("## cluster sweep (single shard, depth = clients x window)");
    report.line(&format!(
        "{:<12} {:<16} {:>4} {:>6} {:>10} {:>12} {:>12}",
        "workload", "protocol", "reps", "depth", "Mops", "upd_p50_us", "upd_p99_us"
    ));
    let arms = [
        ("strict", ReplicationMode::Strict),
        ("gc", ReplicationMode::GroupCommit),
    ];
    let mut strict_wh_d64 = 0.0;
    let mut gc_wh_d64 = 0.0;
    let mut gc_p50_d1_r1 = f64::NAN;
    for (wl_name, read_ratio) in [("write-heavy", 0.0), ("ycsb-a", 0.5)] {
        let wl = one_workload(scale, read_ratio, true, 47);
        for (name, mode) in arms {
            for replicas in [1u32, 2] {
                for (clients, window) in [(1usize, 1usize), (4, 4), (8, 8)] {
                    let depth = clients * window;
                    // YCSB-A rides along at the grid's corners only.
                    if wl_name == "ycsb-a" && (replicas != 1 || depth == 16) {
                        continue;
                    }
                    let r = cluster_run(mode, replicas, clients, window, &wl);
                    if wl_name == "write-heavy" && replicas == 1 && depth == 64 {
                        match mode {
                            ReplicationMode::Strict => strict_wh_d64 = r.mops,
                            _ => gc_wh_d64 = r.mops,
                        }
                    }
                    if wl_name == "write-heavy"
                        && replicas == 1
                        && depth == 1
                        && matches!(mode, ReplicationMode::GroupCommit)
                    {
                        gc_p50_d1_r1 = r.update_p50_us;
                    }
                    report.line(&format!(
                        "{:<12} {:<16} {:>4} {:>6} {:>10.3} {:>12.2} {:>12.2}",
                        wl_name, name, replicas, depth, r.mops, r.update_p50_us, r.update_p99_us
                    ));
                    report.datum(
                        &format!("{wl_name}/{name}/r{replicas}/d{depth}/mops"),
                        r.mops,
                    );
                    report.datum(
                        &format!("{wl_name}/{name}/r{replicas}/d{depth}/upd_p50_us"),
                        r.update_p50_us,
                    );
                }
            }
        }
    }
    let cluster_speedup = gc_wh_d64 / strict_wh_d64.max(1e-9);
    report.line(&format!(
        "# cluster write speedup at depth 64 (r1): {cluster_speedup:.2}x (floor 1.3x)"
    ));
    report.line(&format!(
        "# group-commit write p50, depth 1, 1 replica: {gc_p50_d1_r1:.2} us (ceiling 5.5 us)"
    ));
    report.datum("cluster/speedup_d64", cluster_speedup);
    report.datum("cluster/gc_p50_d1_r1_us", gc_p50_d1_r1);
    report.save();

    assert!(
        pair_speedup >= 1.5,
        "group commit must sustain >= 1.5x per-record strict at channel depth 64 \
         ({pair_speedup:.2}x)"
    );
    assert!(
        cluster_speedup >= 1.3,
        "group commit must deliver >= 1.3x cluster write throughput at depth 64 \
         ({cluster_speedup:.2}x)"
    );
    assert!(
        gc_p50_d1_r1 <= 5.5,
        "strict-semantics write p50 with one replica must stay <= 5.5 us \
         ({gc_p50_d1_r1:.2} us)"
    );
}
