//! A-HASH ablation (§4.1.3) — the index structures against each other:
//! the packed cache-line-group table (default), the compact signature table,
//! and the naive chained-list table. Two halves:
//!
//! 1. Structural counters: cache lines touched (groups/buckets probed, i.e.
//!    pointer dereferences for chained) and full key comparisons per lookup,
//!    loaded and after heavy removals.
//! 2. A full-YCSB A/B: the same cluster and workload run twice, switching
//!    only `ClusterConfig::index` between chained and packed, so the
//!    end-to-end throughput delta of the tentpole index swap is measured in
//!    situ rather than extrapolated from microbenchmarks.
//!
//! Wall-clock microbench numbers live in `perf_index` and the Criterion
//! bench (`benches/hashtable.rs`).

use hydra_bench::{one_workload, paper_cluster, paper_cluster_config, Report, Scale};
use hydra_store::{hash_key, ChainedTable, CompactTable, IndexKind, PackedTable, TableStats};
use hydra_ycsb::{run_workload, DriverConfig};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("user{i:012}").into_bytes())
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let n = (scale.records() as usize).min(400_000);
    let keys = keys(n);
    let mut report = Report::new(
        "abl_hashtable",
        "A-HASH: packed cache-line-group vs compact vs chained tables",
    );
    report.line(&format!(
        "{:<22} {:>14} {:>18} {:>16}",
        "table / phase", "lookups", "lines_or_nodes/op", "full_cmp/op"
    ));

    // Size compact/chained for ~2x overload of the main branch to expose
    // collision handling; the packed table runs at its natural 7/8 ceiling
    // (it cannot be overloaded past one entry per slot by construction).
    let buckets = n / 14; // compact: 7 slots per bucket -> ~2x occupancy
    let mut compact = CompactTable::new(buckets);
    let mut chained = ChainedTable::new(buckets * 8); // same memory budget ballpark
    let mut packed = PackedTable::with_capacity(n);

    for (i, k) in keys.iter().enumerate() {
        let h = hash_key(k);
        compact.insert(h, i as u64);
        chained.insert(h, i as u64);
        packed.insert(h, i as u64, |off| hash_key(&keys[off as usize]));
    }
    compact.reset_stats();
    chained.reset_stats();
    packed.reset_stats();
    for (i, k) in keys.iter().enumerate() {
        let h = hash_key(k);
        assert_eq!(compact.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(chained.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(packed.lookup(h, |off| off == i as u64), Some(i as u64));
    }
    for (name, s) in [
        ("packed / loaded", packed.stats()),
        ("compact / loaded", compact.stats()),
        ("chained / loaded", chained.stats()),
    ] {
        report.line(&format!(
            "{:<22} {:>14} {:>18.3} {:>16.3}",
            name,
            s.lookups,
            s.buckets_probed as f64 / s.lookups as f64,
            s.full_compares as f64 / s.lookups as f64
        ));
        report.datum(
            name,
            serde_json::json!({
                "lines_per_lookup": s.buckets_probed as f64 / s.lookups as f64,
                "cmp_per_lookup": s.full_compares as f64 / s.lookups as f64,
            }),
        );
    }

    // Remove 80% and re-measure: merging (compact) and tombstone purging
    // (packed) must keep probe chains short after mass deletion.
    // Removal confirms identity by offset, exactly as the engine confirms
    // by key bytes — a bare tag/signature match may hit a colliding entry
    // at this key count and remove the wrong one.
    for (i, k) in keys.iter().enumerate().take(n * 4 / 5) {
        let h = hash_key(k);
        compact.remove(h, |off| off == i as u64);
        chained.remove(h, |off| off == i as u64);
        packed.remove(
            h,
            |off| off == i as u64,
            |off| hash_key(&keys[off as usize]),
        );
    }
    let merges = compact.stats().merges;
    let removal_stats = packed.stats();
    compact.reset_stats();
    chained.reset_stats();
    packed.reset_stats();
    for (i, k) in keys.iter().enumerate().skip(n * 4 / 5) {
        let h = hash_key(k);
        assert_eq!(compact.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(chained.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(packed.lookup(h, |off| off == i as u64), Some(i as u64));
    }
    for (name, s) in [
        ("packed / post-remove", packed.stats()),
        ("compact / post-merge", compact.stats()),
        ("chained / post-merge", chained.stats()),
    ] {
        report.line(&format!(
            "{:<22} {:>14} {:>18.3} {:>16.3}",
            name,
            s.lookups,
            s.buckets_probed as f64 / s.lookups as f64,
            s.full_compares as f64 / s.lookups as f64
        ));
    }
    report.line(&format!(
        "# during removals: compact merged {} overflow buckets away; packed purged \
         {} tombstone(s) across {} rebuild(s), {} displacement(s)",
        merges, removal_stats.tombstones_purged, removal_stats.resizes, removal_stats.displacements,
    ));

    // ---- Full-YCSB A/B: identical cluster + workload, only
    // `ClusterConfig::index` flipped. Simulated throughput uses the
    // calibrated fixed per-op cost and is index-insensitive by design, so
    // the in-situ comparison reports what the real index code did under the
    // real (zipfian, read-mostly, batched) request stream: probe lines and
    // full key comparisons per lookup, accumulated across every shard — plus
    // the host wall-clock of the run, whose delta is dominated by the index
    // since everything else in the two runs is identical.
    let wl = one_workload(scale, 0.95, true, 4113);
    report.line(&format!(
        "{:<22} {:>14} {:>18} {:>16} {:>10}",
        "ycsb-b 95/5 zipf", "lookups", "lines_or_nodes/op", "full_cmp/op", "wall_s"
    ));
    for (name, kind) in [
        ("chained", IndexKind::Chained),
        ("packed", IndexKind::Packed),
    ] {
        let cfg = hydra_db::ClusterConfig {
            index: kind,
            ..paper_cluster_config()
        };
        let partitions = cfg.server_nodes * cfg.shards_per_node;
        let (mut cluster, clients) = paper_cluster(cfg, 50);
        let t0 = std::time::Instant::now();
        let r = run_workload(&mut cluster.sim, &clients, &wl, &DriverConfig::default());
        let wall = t0.elapsed().as_secs_f64();
        let mut s = TableStats::default();
        for p in 0..partitions {
            let shard = cluster.shard(p);
            let t = shard.primary.borrow().engine.borrow().table_stats();
            s.lookups += t.lookups;
            s.buckets_probed += t.buckets_probed;
            s.full_compares += t.full_compares;
            s.displacements += t.displacements;
            s.resizes += t.resizes;
        }
        report.line(&format!(
            "{:<22} {:>14} {:>18.3} {:>16.3} {:>10.2}",
            format!("  index={name}"),
            s.lookups,
            s.buckets_probed as f64 / s.lookups as f64,
            s.full_compares as f64 / s.lookups as f64,
            wall,
        ));
        report.datum(
            &format!("ycsb_b_{name}"),
            serde_json::json!({
                "sim_mops": r.mops,
                "wall_s": wall,
                "lines_per_lookup": s.buckets_probed as f64 / s.lookups as f64,
                "cmp_per_lookup": s.full_compares as f64 / s.lookups as f64,
                "displacements": s.displacements,
                "resizes": s.resizes,
            }),
        );
    }
    report.line(
        "# simulated Mops is index-insensitive (calibrated fixed per-op cost); \
         see BENCH_index for isolated wall-clock probe speedups",
    );
    report.save();
}
