//! A-HASH ablation (§4.1.3) — the compact cache-line hash table against the
//! naive chained-list table: cache lines touched (pointer dereferences) and
//! full key comparisons per lookup, across load factors and after heavy
//! removals (bucket merging). Wall-clock numbers live in the Criterion bench
//! (`benches/hashtable.rs`); this binary reports the structural counters.

use hydra_bench::{Report, Scale};
use hydra_store::{hash_key, ChainedTable, CompactTable};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("user{i:012}").into_bytes())
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let n = (scale.records() as usize).min(400_000);
    let keys = keys(n);
    let mut report = Report::new(
        "abl_hashtable",
        "A-HASH: compact cache-line table vs chained-list table (per-lookup costs)",
    );
    report.line(&format!(
        "{:<22} {:>14} {:>18} {:>16}",
        "table / phase", "lookups", "lines_or_nodes/op", "full_cmp/op"
    ));

    // Size both tables for ~2x overload of the main branch to expose
    // collision handling (the interesting regime).
    let buckets = n / 14; // compact: 7 slots per bucket -> ~2x occupancy
    let mut compact = CompactTable::new(buckets);
    let mut chained = ChainedTable::new(buckets * 8); // same memory budget ballpark

    for (i, k) in keys.iter().enumerate() {
        compact.insert(hash_key(k), i as u64);
        chained.insert(hash_key(k), i as u64);
    }
    compact.reset_stats();
    chained.reset_stats();
    for (i, k) in keys.iter().enumerate() {
        let h = hash_key(k);
        assert_eq!(compact.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(chained.lookup(h, |off| off == i as u64), Some(i as u64));
    }
    for (name, s) in [
        ("compact / loaded", compact.stats()),
        ("chained / loaded", chained.stats()),
    ] {
        report.line(&format!(
            "{:<22} {:>14} {:>18.3} {:>16.3}",
            name,
            s.lookups,
            s.buckets_probed as f64 / s.lookups as f64,
            s.full_compares as f64 / s.lookups as f64
        ));
        report.datum(
            name,
            serde_json::json!({
                "lines_per_lookup": s.buckets_probed as f64 / s.lookups as f64,
                "cmp_per_lookup": s.full_compares as f64 / s.lookups as f64,
            }),
        );
    }

    // Remove 80% and re-measure: merging must keep compact chains short.
    for k in keys.iter().take(n * 4 / 5) {
        let h = hash_key(k);
        compact.remove(h, |_| true);
        chained.remove(h, |_| true);
    }
    compact.reset_stats();
    chained.reset_stats();
    for (i, k) in keys.iter().enumerate().skip(n * 4 / 5) {
        let h = hash_key(k);
        assert_eq!(compact.lookup(h, |off| off == i as u64), Some(i as u64));
        assert_eq!(chained.lookup(h, |off| off == i as u64), Some(i as u64));
    }
    for (name, s) in [
        ("compact / post-merge", compact.stats()),
        ("chained / post-merge", chained.stats()),
    ] {
        report.line(&format!(
            "{:<22} {:>14} {:>18.3} {:>16.3}",
            name,
            s.lookups,
            s.buckets_probed as f64 / s.lookups as f64,
            s.full_compares as f64 / s.lookups as f64
        ));
    }
    report.line(&format!(
        "# compact table merged {} overflow buckets away during the removals; {} remain",
        compact.stats().merges,
        compact.overflow_buckets()
    ));
    report.line(
        "# signature filtering keeps full comparisons at ~1/lookup even under 2x bucket overload",
    );
    report.save();
}
