//! Figure 9 — peak throughput and average GET/UPDATE latency of HydraDB
//! against Memcached-, Redis- and RAMCloud-like stores across the six YCSB
//! workloads (replication disabled for fairness, §6.1).

use hydra_baselines::{BaselineCluster, BaselineConfig};
use hydra_bench::{paper_cluster_config, paper_workloads, Report, ReportRow, Scale};
use hydra_ycsb::{run_workload, DriverConfig, WorkloadReport};

fn run_baseline(cfg: BaselineConfig, wl: &hydra_ycsb::Workload, clients: usize) -> WorkloadReport {
    let mut c = BaselineCluster::build(cfg);
    let clients: Vec<_> = (0..clients).map(|i| c.add_client(i % 5)).collect();
    run_workload(&mut c.sim, &clients, wl, &DriverConfig::default())
}

fn main() {
    let scale = Scale::from_env();
    let clients = 50;
    let mut report = Report::new(
        "fig09_overall",
        "Fig. 9: HydraDB vs Memcached/Redis/RAMCloud — peak throughput and mean latency",
    );
    report.line(&format!(
        "{:<16} {:<14} {:>10} {:>12} {:>12}",
        "workload", "system", "Mops", "get_us", "update_us"
    ));
    for (name, wl) in paper_workloads(scale, 9) {
        let hydra = {
            let cfg = paper_cluster_config();
            hydra_bench::run_hydra(cfg, clients, &wl)
        };
        let memcached = run_baseline(BaselineConfig::memcached(), &wl, clients);
        let redis = run_baseline(BaselineConfig::redis(), &wl, clients);
        let ramcloud = run_baseline(BaselineConfig::ramcloud(), &wl, clients);
        for (sys, r) in [
            ("HydraDB", &hydra),
            ("Memcached-like", &memcached),
            ("Redis-like", &redis),
            ("RAMCloud-like", &ramcloud),
        ] {
            report.line(&format!(
                "{:<16} {:<14} {:>10.3} {:>12.2} {:>12.2}",
                name, sys, r.mops, r.get_mean_us, r.update_mean_us
            ));
            report.datum(&format!("{name}/{sys}"), ReportRow::from(r));
        }
        let worst = memcached.mops.min(redis.mops).min(ramcloud.mops);
        let best = memcached.mops.max(redis.mops).max(ramcloud.mops);
        report.line(&format!(
            "{:<16} -> HydraDB is {:.1}x the best baseline, {:.1}x the worst",
            "",
            hydra.mops / best,
            hydra.mops / worst
        ));
    }
    report.save();
}
