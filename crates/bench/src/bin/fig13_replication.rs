//! Figure 13 — replication cost: mean INSERT latency into a single shard
//! under (i) no replication, (ii) strict request/acknowledge, and (iii) RDMA
//! Logging replication, for 1 and 2 secondaries and a growing client count.
//! The paper's headline: strict acks double the no-replication latency,
//! while RDMA Logging adds only ~12% (1 replica) / ~41% (2 replicas).

use std::cell::Cell;
use std::rc::Rc;

use hydra_bench::{Report, Scale};
use hydra_db::{ClusterBuilder, ClusterConfig, HydraClient, ReplicationMode};
use hydra_sim::Sim;

fn insert_stream(
    sim: &mut Sim,
    client: &HydraClient,
    prefix: u64,
    count: u64,
    done: Rc<Cell<usize>>,
) {
    fn step(
        sim: &mut Sim,
        client: HydraClient,
        prefix: u64,
        i: u64,
        count: u64,
        done: Rc<Cell<usize>>,
    ) {
        if i >= count {
            done.set(done.get() + 1);
            return;
        }
        let key = format!("c{prefix:03}-k{i:012}");
        let c2 = client.clone();
        client.insert(
            sim,
            key.as_bytes(),
            &[0xAB; 32],
            Box::new(move |sim, r| {
                r.expect("insert succeeds");
                step(sim, c2, prefix, i + 1, count, done);
            }),
        );
    }
    step(sim, client.clone(), prefix, 0, count, done);
}

fn mean_insert_latency(mode: ReplicationMode, replicas: u32, clients: usize, inserts: u64) -> f64 {
    let cfg = ClusterConfig {
        server_nodes: 1 + replicas.max(1),
        shards_per_node: 1,
        partitions: Some(1),
        client_nodes: 2,
        replicas,
        replication: mode,
        arena_words: 1 << 23,
        expected_items: 1 << 20,
        repl_ring_words: 1 << 18,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterBuilder::new(cfg).build();
    let clients: Vec<_> = (0..clients).map(|i| cluster.add_client(i % 2)).collect();
    let done = Rc::new(Cell::new(0usize));
    for (i, c) in clients.iter().enumerate() {
        insert_stream(&mut cluster.sim, c, i as u64, inserts, done.clone());
    }
    cluster.sim.run();
    assert_eq!(done.get(), clients.len());
    let mut lat = hydra_sim::Histogram::new();
    for c in &clients {
        lat.merge(&c.stats().update_lat);
    }
    lat.mean() / 1_000.0
}

fn main() {
    let scale = Scale::from_env();
    let inserts_per_client = (scale.ops() / 20).max(500);
    let mut report = Report::new(
        "fig13_replication",
        "Fig. 13: INSERT latency under replication protocols (single shard)",
    );
    report.line(&format!(
        "{:<10} {:<22} {:>10} {:>10} {:>12}",
        "clients", "protocol", "mean_us", "vs none", "overhead"
    ));
    for clients in [1usize, 2, 4, 8] {
        let none = mean_insert_latency(ReplicationMode::None, 0, clients, inserts_per_client);
        report.line(&format!(
            "{:<10} {:<22} {:>10.2} {:>10} {:>12}",
            clients, "no replication", none, "1.00x", "-"
        ));
        report.datum(&format!("none/{clients}"), none);
        for replicas in [1u32, 2] {
            for (label, mode) in [
                ("strict req/ack", ReplicationMode::Strict),
                ("RDMA logging", ReplicationMode::Logging { ack_every: 32 }),
                ("group commit", ReplicationMode::GroupCommit),
            ] {
                let us = mean_insert_latency(mode, replicas, clients, inserts_per_client);
                report.line(&format!(
                    "{:<10} {:<22} {:>10.2} {:>9.2}x {:>11.1}%",
                    clients,
                    format!("{label} x{replicas}"),
                    us,
                    us / none,
                    (us / none - 1.0) * 100.0
                ));
                report.datum(&format!("{label}-r{replicas}/{clients}"), us);
            }
        }
    }
    report.line(
        "# paper anchors: strict ~2.0x none; logging ~1.12x (1 replica), ~1.41x (2 replicas)",
    );
    report.save();
}
