//! Scan-plane ablation (YCSB-E): the hybrid ordered index against the
//! hash-only baseline that can only *emulate* a range scan by dumping and
//! sorting the whole shard.
//!
//! Two measurements:
//!
//! 1. **Engine microbenchmark** — `ShardEngine::scan_into` with
//!    `IndexKind::Hybrid` (native skiplist walk) vs `IndexKind::Packed`
//!    (emulated: full dump + sort per scan) over Zipfian-scrambled start
//!    keys at scan length 100, plus a point-GET probe over both engines to
//!    bound the hybrid's read-path overhead. The emulated baseline is
//!    sampled (each scan is O(n log n)) and reported as per-scan rate.
//! 2. **Cluster YCSB-E** — `Workload::workload_e` (95% scans, uniform
//!    length 1..=100, 5% inserts) through the full wire/server/client scan
//!    plane on a hybrid-indexed cluster, reporting end-to-end virtual-time
//!    throughput and scan latency.
//!
//! Headline data: `scan_speedup` (hybrid vs emulated scans/sec, acceptance
//! floor 5x) and `get_regression_pct` (hybrid point-GET cost vs packed,
//! acceptance ceiling 5%).

use std::time::Instant;

use hydra_bench::{paper_cluster, paper_cluster_config, Report, Scale};
use hydra_db::IndexKind;
use hydra_store::{EngineConfig, ShardEngine, WriteMode};
use hydra_ycsb::{run_workload, DriverConfig, Workload, ZipfianGenerator};

const SCAN_LEN: u32 = 100;

fn key_of(id: u64) -> Vec<u8> {
    let mut k = format!("u{id:015}").into_bytes();
    k.resize(16, b'.');
    k
}

fn engine(kind: IndexKind, records: u64) -> ShardEngine {
    // ~64 B per item (16 B key + 32 B value + headers): size the arena with
    // ample slack so neither engine ever blocks on reclamation.
    let arena_words = ((records as usize * 16).next_power_of_two()).max(1 << 16);
    let mut e = ShardEngine::new(EngineConfig {
        arena_words,
        expected_items: records as usize,
        index: kind,
        write_mode: WriteMode::Reliable,
        min_lease_ns: 1_000_000,
        max_lease_ns: 64_000_000,
    });
    for id in 0..records {
        e.insert(0, &key_of(id), &[0x5A; 32]).expect("load");
    }
    e
}

/// Deterministic LCG stream (no RNG dependency on wall time).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Runs `scans` scans of `SCAN_LEN` items from scrambled start ids and
/// returns (scans/sec, items emitted).
fn bench_scans(e: &mut ShardEngine, records: u64, scans: usize, seed: u64) -> (f64, u64) {
    let mut lcg = Lcg(seed);
    let mut scratch = Vec::new();
    let mut items = 0u64;
    let start_t = Instant::now();
    for _ in 0..scans {
        let start_id = ZipfianGenerator::fnv_scramble(lcg.next()) % records;
        let start = key_of(start_id);
        let mut emitted = 0u32;
        e.scan_into(&start, &mut scratch, |_k, _v| {
            emitted += 1;
            emitted < SCAN_LEN
        });
        items += emitted as u64;
    }
    let secs = start_t.elapsed().as_secs_f64().max(1e-9);
    (scans as f64 / secs, items)
}

/// Point-GET throughput (Mops) for both engines over the same scrambled
/// probe order, measured in *interleaved* rounds with alternating engine
/// order. A sequential A-then-B measurement systematically favours whichever
/// engine runs second (warmed caches, settled frequency scaling, completed
/// page faults): the original layout measured hybrid first and packed
/// second, and the resulting bias exceeded the true index overhead, showing
/// up as a spurious *negative* "regression". Interleaving slices the probe
/// stream into short rounds and swaps which engine goes first each round, so
/// both engines sample the same machine conditions.
/// Returns `(hybrid Mops, packed Mops, regression %)`. The throughputs are
/// total-time aggregates; the regression estimate is the *median* of the
/// per-round packed/hybrid time ratios, so a transient load spike that lands
/// on a single round (wall-clock probes on a shared machine) cannot swing
/// the acceptance gate the way it swings the aggregate.
fn bench_gets_interleaved(
    hybrid: &mut ShardEngine,
    packed: &mut ShardEngine,
    records: u64,
    ops: usize,
    seed: u64,
) -> (f64, f64, f64) {
    const ROUNDS: usize = 16;
    let mut lcg = Lcg(seed);
    let per_round = (ops / ROUNDS).max(1);
    let keys: Vec<Vec<u8>> = (0..per_round * ROUNDS)
        .map(|_| key_of(ZipfianGenerator::fnv_scramble(lcg.next()) % records))
        .collect();
    let mut scratch = Vec::new();
    let probe = |e: &mut ShardEngine, round: usize, scratch: &mut Vec<u8>| -> f64 {
        let slice = &keys[round * per_round..(round + 1) * per_round];
        let start_t = Instant::now();
        let mut hits = 0usize;
        for (i, k) in slice.iter().enumerate() {
            if e.get_into(i as u64, k, scratch).is_some() {
                hits += 1;
            }
        }
        let secs = start_t.elapsed().as_secs_f64();
        assert_eq!(hits, slice.len(), "all probes target loaded keys");
        secs
    };
    let (mut t_hy, mut t_pk) = (0.0f64, 0.0f64);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let (hy, pk) = if round % 2 == 0 {
            let hy = probe(hybrid, round, &mut scratch);
            let pk = probe(packed, round, &mut scratch);
            (hy, pk)
        } else {
            let pk = probe(packed, round, &mut scratch);
            let hy = probe(hybrid, round, &mut scratch);
            (hy, pk)
        };
        t_hy += hy;
        t_pk += pk;
        ratios.push(pk / hy.max(1e-12));
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = (ratios[ROUNDS / 2 - 1] + ratios[ROUNDS / 2]) / 2.0;
    let total = (per_round * ROUNDS) as f64;
    (
        total / t_hy.max(1e-9) / 1e6,
        total / t_pk.max(1e-9) / 1e6,
        (1.0 - median_ratio) * 100.0,
    )
}

fn main() {
    let scale = Scale::from_env();
    let records = scale.records();
    let (hybrid_scans, emul_scans, get_ops) = match scale {
        Scale::Smoke => (2_000, 40, 200_000),
        Scale::Normal => (20_000, 60, 2_000_000),
        Scale::Paper => (100_000, 100, 10_000_000),
    };

    let mut report = Report::new(
        "BENCH_scan",
        "Scan plane: hybrid ordered index vs hash-only emulated scans (YCSB-E)",
    );
    report.line(&format!(
        "# {records} records; scan length {SCAN_LEN}; {hybrid_scans} hybrid / {emul_scans} emulated scans (emulated sampled: each is a full dump+sort)"
    ));

    // --- engine ablation ---
    let mut hybrid = engine(IndexKind::Hybrid, records);
    let mut packed = engine(IndexKind::Packed, records);
    assert!(hybrid.scan_is_native());
    assert!(!packed.scan_is_native());

    // Warm both, then measure.
    let _ = bench_scans(&mut hybrid, records, hybrid_scans / 10, 7);
    let _ = bench_scans(&mut packed, records, (emul_scans / 10).max(1), 7);
    let (hy_rate, hy_items) = bench_scans(&mut hybrid, records, hybrid_scans, 13);
    let (em_rate, _) = bench_scans(&mut packed, records, emul_scans, 13);
    let speedup = hy_rate / em_rate;
    report.line(&format!(
        "{:<22} {:>16.0} {:>16.2} {:>10.1}x",
        "scans_per_sec", hy_rate, em_rate, speedup
    ));
    report.line(&format!(
        "# hybrid walked {} items ({:.1} per scan)",
        hy_items,
        hy_items as f64 / hybrid_scans as f64
    ));

    let (g_hy, g_pk, regression_pct) =
        bench_gets_interleaved(&mut hybrid, &mut packed, records, get_ops, 19);
    report.line(&format!(
        "{:<22} {:>16.2} {:>16.2} {:>9.2}%",
        "point_get_mops", g_hy, g_pk, regression_pct
    ));

    report.datum("hybrid_scans_per_s", hy_rate);
    report.datum("emulated_scans_per_s", em_rate);
    report.datum("scan_speedup", speedup);
    report.datum("get_hybrid_mops", g_hy);
    report.datum("get_packed_mops", g_pk);
    report.datum("get_regression_pct", regression_pct);

    // --- cluster YCSB-E through the wire scan plane ---
    let cfg = hydra_db::ClusterConfig {
        index: IndexKind::Hybrid,
        ..paper_cluster_config()
    };
    let (mut cluster, clients) = paper_cluster(cfg, 50);
    let wl = Workload::workload_e(records, scale.ops(), 27);
    let r = run_workload(&mut cluster.sim, &clients, &wl, &DriverConfig::default());
    report.line(&format!(
        "# ycsb-e (hybrid cluster): {:.3} Mops | {} scans | scan mean {:.2}us p99 {:.2}us",
        r.mops, r.scans, r.scan_mean_us, r.scan_p99_us
    ));
    report.datum(
        "ycsb_e_hybrid",
        serde_json::json!({
            "mops": r.mops,
            "scans": r.scans,
            "scan_mean_us": r.scan_mean_us,
            "scan_p99_us": r.scan_p99_us,
            "errors": r.errors,
        }),
    );

    report.line(&format!(
        "# headline: hybrid serves scans {speedup:.1}x faster than the emulated hash-only \
         baseline; point GETs regress {regression_pct:.2}%"
    ));
    assert!(
        speedup >= 5.0,
        "acceptance: hybrid must beat emulated scans by >=5x (got {speedup:.2}x)"
    );
    // The GET probe is wall-clock; at smoke scale the measured window is a
    // few tens of milliseconds and scheduler noise swamps the <5% bound, so
    // the regression gate only arms at normal/paper scale.
    if !matches!(scale, Scale::Smoke) {
        assert!(
            regression_pct < 5.0,
            "acceptance: point-GET regression must stay <5% (got {regression_pct:.2}%)"
        );
    }
    report.save();
}
