//! Elastic membership: live node-join rebalance under YCSB traffic.
//!
//! One steady-state baseline plus a sweep of elastic runs. Each elastic run
//! replays the same zipfian read-heavy workload and, once 20% of the
//! measured ops have completed, fires a scripted `JoinNode` chaos event: a
//! new machine comes online with two fresh partitions and the migration
//! subsystem streams the moving ranges toward it in bounded quanta while
//! the clients keep going. A virtual-time probe watches the plan and
//! snapshots the GET histogram the moment it settles, so the reported
//! mid-migration window covers exactly the copy + double-write + flip
//! interval. The sweep varies `migration_quantum_items` (the migration
//! rate) to show the rebalance-time / throughput-dip trade-off.
//!
//! Acceptance (the PR's headline floors, asserted at the default quantum):
//! * mid-migration point-GET p99 stays within **3x** of steady state — the
//!   copy plane rides the throughput lane, not the latency lane;
//! * zero keys lost, duplicated, or misplaced after the flip, and the old
//!   owners shed their moved ranges completely.
//!
//! A final quiesced drain of one original machine (the inverse
//! reconfiguration) is timed for the JSON artifact as well.

use std::cell::RefCell;
use std::rc::Rc;

use hydra_bench::{one_workload, Report, Scale};
use hydra_chaos::FaultEvent;
use hydra_db::{ClientMode, ClusterBuilder, ClusterConfig, HydraClient, MigrationEngine};
use hydra_sim::time::{as_secs, as_us};
use hydra_sim::{Histogram, Sim};
use hydra_ycsb::{run_workload, run_workload_hooked, DriverConfig, KvClient, OpHook, Workload};

const CLIENTS: usize = 16;
const JOIN_SHARDS: u32 = 2;

fn elastic_cfg(quantum: u32, seed: u64) -> ClusterConfig {
    ClusterConfig {
        seed,
        server_nodes: 2,
        shards_per_node: 2,
        client_nodes: 2,
        // Message-path GETs: every point op crosses the shard core, so the
        // tail actually contends with the migration quanta.
        client_mode: ClientMode::RdmaWrite,
        arena_words: 1 << 23,
        expected_items: 1 << 20,
        migration_quantum_items: quantum,
        ..ClusterConfig::default()
    }
}

/// The mid-migration window, snapshotted the moment the plan settles.
struct MidWindow {
    /// Virtual time from the join event to plan completion.
    rebalance_ns: u64,
    /// Merged GET p99 over the window (µs).
    get_p99_us: f64,
    /// Ops completed inside the window.
    ops: u64,
}

struct ElasticOutcome {
    mid: MidWindow,
    moved_keys: u64,
    audit: (usize, usize),
    total_items: usize,
}

/// Polls the engine every 50µs of virtual time; the first quiet observation
/// snapshots the clients' histograms (reset at the join, so they cover the
/// migration window exactly).
fn probe_settle(
    sim: &mut Sim,
    migration: MigrationEngine,
    clients: Vec<HydraClient>,
    t_start: u64,
    out: Rc<RefCell<Option<MidWindow>>>,
) {
    // `active()` keeps returning the most recent plan after it settles (the
    // handle is the status carrier), so the probe keys off settledness.
    if migration.active().is_none_or(|h| h.is_settled()) {
        let mut h = Histogram::new();
        let mut ops = 0u64;
        for c in &clients {
            let s = c.kv_snapshot();
            h.merge(&s.get_lat);
            ops += s.ops;
        }
        *out.borrow_mut() = Some(MidWindow {
            rebalance_ns: sim.now().saturating_sub(t_start),
            get_p99_us: as_us(h.quantile(0.99)),
            ops,
        });
        return;
    }
    sim.schedule_in(50_000, move |sim| {
        probe_settle(sim, migration, clients, t_start, out)
    });
}

fn elastic_run(quantum: u32, wl: &Workload, seed: u64) -> ElasticOutcome {
    let mut cluster = ClusterBuilder::new(elastic_cfg(quantum, seed)).build();
    let clients: Vec<HydraClient> = (0..CLIENTS).map(|i| cluster.add_client(i % 2)).collect();
    let chaos = cluster.chaos();
    let migration = cluster.migration.clone();

    let window: Rc<RefCell<Option<MidWindow>>> = Rc::new(RefCell::new(None));
    let hook: OpHook = {
        let clients = clients.clone();
        let window = window.clone();
        Box::new(move |sim: &mut Sim| {
            // Reset so the histograms cover [join, settle] exactly.
            for c in &clients {
                c.kv_reset_stats();
            }
            let t_start = sim.now();
            chaos.apply(
                sim,
                &FaultEvent::JoinNode {
                    shards: JOIN_SHARDS,
                },
            );
            probe_settle(sim, migration, clients, t_start, window);
        })
    };
    let at = wl.ops / 5;
    let report = run_workload_hooked(
        &mut cluster.sim,
        &clients,
        wl,
        &DriverConfig::default(),
        vec![(at, hook)],
    );
    assert_eq!(report.errors, 0, "elastic run must be error-free");
    assert_eq!(
        cluster.migration.completed(),
        1,
        "the join must settle before the queue drains"
    );
    let mid = window
        .borrow_mut()
        .take()
        .expect("settle probe must have fired");
    let moved_keys = cluster.report().rows.iter().map(|r| r.moved_keys).sum();
    ElasticOutcome {
        mid,
        moved_keys,
        audit: cluster.ownership_audit(),
        total_items: cluster.total_items(),
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = hydra_sim::seed_from_env(37);
    let wl = one_workload(scale, 0.95, true, seed);

    let mut report = Report::new(
        "BENCH_elastic",
        "Elastic membership: live join rebalance vs migration rate (95% GET zipfian)",
    );
    report.line(&format!(
        "# {} records, {} ops, {CLIENTS} clients; JoinNode(+{JOIN_SHARDS} shards) at 20% of the run",
        wl.records, wl.ops
    ));

    // Steady-state baseline on the same topology, no reconfiguration.
    let mut cluster = ClusterBuilder::new(elastic_cfg(128, seed)).build();
    let clients: Vec<HydraClient> = (0..CLIENTS).map(|i| cluster.add_client(i % 2)).collect();
    let steady = run_workload(&mut cluster.sim, &clients, &wl, &DriverConfig::default());
    assert_eq!(steady.errors, 0);

    report.line(&format!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "run", "get_p99_us", "mid_mops", "reb_ms", "moved_keys", "dip"
    ));
    report.line(&format!(
        "{:<16} {:>12.2} {:>12.3} {:>12} {:>12} {:>10}",
        "steady", steady.get_p99_us, steady.mops, "-", "-", "-"
    ));
    report.datum("steady_get_p99_us", steady.get_p99_us);
    report.datum("steady_mops", steady.mops);

    // Sweep the migration rate: larger quanta finish faster but lean harder
    // on the shard cores mid-copy.
    let mut default_outcome = None;
    for &quantum in &[32u32, 128, 512] {
        let o = elastic_run(quantum, &wl, seed);
        let mid_mops = o.mid.ops as f64 / as_secs(o.mid.rebalance_ns.max(1)) / 1e6;
        let dip = mid_mops / steady.mops.max(1e-9);
        let reb_ms = o.mid.rebalance_ns as f64 / 1e6;
        let name = format!("join-q{quantum}");
        report.line(&format!(
            "{:<16} {:>12.2} {:>12.3} {:>12.2} {:>12} {:>10.3}",
            name, o.mid.get_p99_us, mid_mops, reb_ms, o.moved_keys, dip
        ));
        report.datum(&format!("q{quantum}_mid_get_p99_us"), o.mid.get_p99_us);
        report.datum(&format!("q{quantum}_mid_mops"), mid_mops);
        report.datum(&format!("q{quantum}_rebalance_ms"), reb_ms);
        report.datum(&format!("q{quantum}_throughput_dip"), dip);
        report.datum(&format!("q{quantum}_moved_keys"), o.moved_keys);

        assert_eq!(
            o.audit,
            (0, 0),
            "q{quantum}: keys misplaced or duplicated after the flip"
        );
        assert_eq!(
            o.total_items, wl.records as usize,
            "q{quantum}: keys lost or invented by the migration"
        );
        assert!(
            o.moved_keys > 0,
            "q{quantum}: the join must move real ranges"
        );
        if quantum == 128 {
            default_outcome = Some(o);
        }
    }

    let o = default_outcome.expect("default quantum swept");
    assert!(o.mid.ops > 0, "mid-migration window must contain traffic");
    let blowup = o.mid.get_p99_us / steady.get_p99_us.max(1e-9);
    report.line(&format!(
        "# mid-migration point-GET p99 blowup vs steady: {blowup:.2}x (gate: <= 3x)"
    ));
    report.datum("mid_p99_blowup", blowup);
    assert!(
        blowup <= 3.0,
        "acceptance: mid-migration GET p99 must stay within 3x of steady state \
         (got {blowup:.2}x, {:.2}us vs {:.2}us)",
        o.mid.get_p99_us,
        steady.get_p99_us
    );

    // The inverse reconfiguration, quiesced: drain one original machine and
    // time the plan.
    let mut cluster = ClusterBuilder::new(elastic_cfg(128, seed)).build();
    let client = cluster.add_client(0);
    let n_drain = (wl.records / 10).max(1_000);
    for i in 0..n_drain {
        let k = wl.key_of(i);
        let v = wl.value_of(i, 0);
        client.put(
            &mut cluster.sim,
            &k,
            &v,
            Box::new(|_, r| {
                r.expect("drain-leg load write succeeds");
            }),
        );
        cluster.sim.run();
    }
    let t0 = cluster.sim.now();
    let departed = cluster.drain_server(0);
    let drain_ms = (cluster.sim.now() - t0) as f64 / 1e6;
    report.line(&format!(
        "# quiesced drain of node 0: {} partitions retired in {drain_ms:.2} ms",
        departed.len()
    ));
    report.datum("drain_partitions", departed.len());
    report.datum("drain_rebalance_ms", drain_ms);
    assert_eq!(cluster.ownership_audit(), (0, 0), "drain audit");

    report.save();
}
