//! A-SHARE ablation (§4.2.4) — remote-pointer sharing among collocated
//! clients: faster cache warm-up (a key fetched by one client is a fast read
//! for its ten neighbours) and damped invalidation cascades (one invalid
//! fetch repairs the entry for everyone).

use hydra_bench::{one_workload, paper_cluster_config, Report, Scale};
use hydra_db::ClusterConfig;
use hydra_ycsb::{run_workload, DriverConfig, Workload};

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "abl_share",
        "A-SHARE: shared vs exclusive remote-pointer cache (50 clients on 5 nodes)",
    );
    report.line(&format!(
        "{:<12} {:<12} {:>10} {:>12} {:>14} {:>12}",
        "cache", "workload", "Mops", "hit_rate", "invalid_hits", "msg_gets"
    ));
    for (wname, ratio) in [("100g-zipf", 1.0), ("90g-10u-zipf", 0.9)] {
        for shared in [false, true] {
            let cfg = ClusterConfig {
                shared_ptr_cache: shared,
                ..paper_cluster_config()
            };
            let wl = Workload {
                ops: (scale.ops() / 2).max(10_000),
                ..one_workload(scale, ratio, true, 41)
            };
            let nodes = cfg.client_nodes as usize;
            let mut cluster = hydra_db::ClusterBuilder::new(cfg).build();
            let clients: Vec<_> = (0..50).map(|i| cluster.add_client(i % nodes)).collect();
            let r = run_workload(&mut cluster.sim, &clients, &wl, &DriverConfig::default());
            let gets = r.rptr_hits + r.invalid_hits + r.msg_gets;
            let hit_rate = if gets == 0 {
                0.0
            } else {
                r.rptr_hits as f64 / gets as f64
            };
            let label = if shared { "shared" } else { "exclusive" };
            report.line(&format!(
                "{:<12} {:<12} {:>10.3} {:>11.1}% {:>14} {:>12}",
                label,
                wname,
                r.mops,
                hit_rate * 100.0,
                r.invalid_hits,
                r.msg_gets
            ));
            report.datum(
                &format!("{wname}/{label}"),
                serde_json::json!({
                    "mops": r.mops,
                    "hit_rate": hit_rate,
                    "invalid_hits": r.invalid_hits,
                    "msg_gets": r.msg_gets,
                }),
            );
        }
    }
    report.line("# sharing raises the hit rate (warm-up amortized over the node) and cuts duplicate invalid fetches");
    report.save();
}
