//! Figure 11 — remote-pointer hit analysis for the 50-client runs: how many
//! GETs were served by a validated one-sided read (successful hits), how many
//! fetched an outdated item and fell back (invalid hits), and how many went
//! through the server message path.

use hydra_bench::{paper_cluster_config, paper_workloads, Report, ReportRow, Scale};

fn main() {
    let scale = Scale::from_env();
    let clients = 50;
    let mut report = Report::new(
        "fig11_hits",
        "Fig. 11: remote-pointer hit analysis (50 clients, RDMA Write + Read)",
    );
    report.line(&format!(
        "{:<16} {:>14} {:>14} {:>12} {:>12}",
        "workload", "success_hits", "invalid_hits", "msg_gets", "hit_rate"
    ));
    let mut zipf_ro_hits = 0u64;
    let mut zipf_5050_hits = 0u64;
    let mut zipf_5050_invalid = 0u64;
    for (name, wl) in paper_workloads(scale, 11) {
        let r = hydra_bench::run_hydra(paper_cluster_config(), clients, &wl);
        let gets = r.rptr_hits + r.invalid_hits + r.msg_gets;
        let rate = if gets == 0 {
            0.0
        } else {
            r.rptr_hits as f64 / gets as f64
        };
        report.line(&format!(
            "{:<16} {:>14} {:>14} {:>12} {:>11.1}%",
            name,
            r.rptr_hits,
            r.invalid_hits,
            r.msg_gets,
            rate * 100.0
        ));
        report.datum(&name, ReportRow::from(&r));
        if name == "100g-zipf" {
            zipf_ro_hits = r.rptr_hits;
        }
        if name == "50g-50u-zipf" {
            zipf_5050_hits = r.rptr_hits;
            zipf_5050_invalid = r.invalid_hits;
        }
    }
    if zipf_ro_hits > 0 {
        report.line(&format!(
            "# Zipfian: moving from 0% to 50% updates drops successful hits by {:.1}% and produces {} invalid hits (paper: -75.5%, ~7M invalid)",
            (1.0 - zipf_5050_hits as f64 / zipf_ro_hits as f64) * 100.0,
            zipf_5050_invalid
        ));
    }
    report.save();
}
