//! Connection scaling: the NIC resource cliff and the mux/huge-page fix.
//!
//! Sweeps the client count against the paper serving topology (1 server
//! machine, 4 shards) under four connection-plane arms:
//!
//! * **ded/4k** — one QP per (client, partition), 4 KiB page registration:
//!   the naive plane. Past the NIC's on-chip QP-state (ICM) and MTT cache
//!   capacities every message pays PCIe context fetches, and the driver's
//!   per-connection overhead compounds — throughput collapses.
//! * **ded/huge** — dedicated QPs but 2 MiB pages: the MTT collapses ~512x,
//!   isolating the QP-state share of the cliff.
//! * **mux/4k** — one QP per (client, server machine) with tag demux + SRQ:
//!   QP count drops by the shards-per-node factor, isolating the MTT share.
//! * **mux/huge** — both fixes (the Storm/RDMAvisor recipe): the NIC
//!   working set stays on chip across the whole sweep.
//!
//! Acceptance (the PR's headline floors):
//! * at the top of the sweep, **mux/huge >= 1.3x ded/4k** throughput;
//! * at 16 clients (where no cache can miss), mux/huge costs **<= 5%**
//!   vs ded/4k — the optimizations are free when the fabric is small.

use hydra_bench::{one_workload, paper_cluster, paper_cluster_config, Report, Scale};
use hydra_db::ClusterConfig;
use hydra_ycsb::{run_workload, DriverConfig, Workload, WorkloadReport};

struct Arm {
    name: &'static str,
    mux: bool,
    huge: bool,
}

const ARMS: [Arm; 4] = [
    Arm {
        name: "ded/4k",
        mux: false,
        huge: false,
    },
    Arm {
        name: "ded/huge",
        mux: false,
        huge: true,
    },
    Arm {
        name: "mux/4k",
        mux: true,
        huge: false,
    },
    Arm {
        name: "mux/huge",
        mux: true,
        huge: true,
    },
];

struct ArmResult {
    rep: WorkloadReport,
    server_qps: u32,
    mtt_entries: u64,
    qp_misses: u64,
    mtt_misses: u64,
    miss_pen_ms: f64,
}

fn run_arm(arm: &Arm, clients: usize, wl: &Workload) -> ArmResult {
    let page = if arm.huge { 2 << 20 } else { 4096 };
    let mut cfg = ClusterConfig {
        mux_connections: arm.mux,
        srq: arm.mux,
        page_bytes: page,
        // The dedicated/4K arm is *supposed* to collapse at the top of the
        // sweep; keep the client from declaring its own slowness a timeout.
        op_timeout_ns: 250 * hydra_sim::time::MS,
        ..paper_cluster_config()
    };
    cfg.fabric.default_page_bytes = page;
    let (mut cluster, handles) = paper_cluster(cfg, clients);
    let rep = run_workload(&mut cluster.sim, &handles, wl, &DriverConfig::default());
    let node = cluster.server_nodes[0];
    let stats = cluster.fab.node_stats(node);
    ArmResult {
        rep,
        server_qps: cluster.fab.qp_count(node),
        mtt_entries: cluster.fab.mtt_registered(node),
        qp_misses: stats.qp_cache_misses,
        mtt_misses: stats.mtt_cache_misses,
        miss_pen_ms: stats.miss_penalty_ns as f64 / 1e6,
    }
}

fn main() {
    let scale = Scale::from_env();
    let counts: &[usize] = match scale {
        Scale::Smoke => &[16, 256],
        _ => &[16, 128, 512, 2048],
    };
    let top = *counts.last().unwrap();

    let mut report = Report::new(
        "BENCH_conn",
        "Connection scaling: NIC cache cliff vs QP multiplexing + SRQ + huge pages",
    );
    report.line(&format!(
        "# {} records, {} ops per run; 1 server node x 4 shards; 50/50 read-update",
        scale.records(),
        scale.ops()
    ));
    report.line(&format!(
        "{:<8} {:<9} {:>8} {:>11} {:>8} {:>8} {:>9} {:>9} {:>12}",
        "clients",
        "arm",
        "mops",
        "get_p99_us",
        "srv_qps",
        "mtt_ent",
        "qp_miss",
        "mtt_miss",
        "miss_pen_ms"
    ));

    // (clients, arm) -> mops, for the floor checks after the sweep.
    let mut mops = std::collections::HashMap::new();
    for &clients in counts {
        let wl = one_workload(scale, 0.5, false, 47);
        for arm in &ARMS {
            let r = run_arm(arm, clients, &wl);
            assert_eq!(
                r.rep.errors, 0,
                "{} @ {clients} clients: run must be error-free",
                arm.name
            );
            report.line(&format!(
                "{:<8} {:<9} {:>8.3} {:>11.2} {:>8} {:>8} {:>9} {:>9} {:>12.2}",
                clients,
                arm.name,
                r.rep.mops,
                r.rep.get_p99_us,
                r.server_qps,
                r.mtt_entries,
                r.qp_misses,
                r.mtt_misses,
                r.miss_pen_ms
            ));
            let key = arm.name.replace('/', "_");
            report.datum(&format!("{key}_mops_{clients}"), r.rep.mops);
            report.datum(&format!("{key}_get_p99_us_{clients}"), r.rep.get_p99_us);
            if clients == top {
                report.datum(&format!("{key}_server_qps_top"), r.server_qps);
                report.datum(&format!("{key}_qp_misses_top"), r.qp_misses);
                report.datum(&format!("{key}_mtt_misses_top"), r.mtt_misses);
            }
            mops.insert((clients, arm.name), r.rep.mops);
        }
    }

    let ratio_at = |clients: usize| -> f64 {
        mops[&(clients, "mux/huge")] / mops[&(clients, "ded/4k")].max(1e-9)
    };
    let top_ratio = ratio_at(top);
    let small_ratio = ratio_at(counts[0]);
    report.line(&format!(
        "# mux/huge vs ded/4k: {:.3}x at {} clients, {:.3}x at {} clients",
        small_ratio, counts[0], top_ratio, top
    ));
    report.datum("mux_huge_over_ded_4k_top", top_ratio);
    report.datum("mux_huge_over_ded_4k_small", small_ratio);

    assert!(
        top_ratio >= 1.3,
        "acceptance: mux/huge must beat ded/4k by >=1.3x at {top} clients \
         (got {top_ratio:.3}x)"
    );
    assert!(
        small_ratio >= 0.95,
        "acceptance: mux/huge must cost <=5% at {} clients where the NIC \
         caches never miss (got {small_ratio:.3}x)",
        counts[0]
    );
    report.save();
}
