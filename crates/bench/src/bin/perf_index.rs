//! Index microbenchmark (§4.1.3): the packed cache-line-group table against
//! the chained-list baseline, probing through a simulated item heap so the
//! full-key confirm pays realistic cache costs.
//!
//! Sweeps load factor × value size × probe batch width and reports hit-probe
//! throughput for both structures plus the packed/chained speedup. The
//! headline datum (`speedup_lf90_v32_b1`) is the single-key probe speedup at
//! load factor 0.9 with 16 B keys / 32 B values — the regime the paper's
//! YCSB runs live in.
//!
//! The packed table is pinned at the target load factor with growth disabled
//! (`with_max_load(groups, 8)`); the chained baseline uses the repo's
//! standard sizing of one bucket per four entries (as in
//! `benches/hashtable.rs` and the seed engine), i.e. four pointer
//! dereferences per expected chain walk against the packed table's one-line
//! group probes.

use std::time::Instant;

use hydra_bench::{Report, Scale};
use hydra_store::{hash_key, ChainedTable, PackedTable, GROUP_SLOTS, LOOKUP_BATCH};

/// One synthetic item: 16 B key followed by the value bytes.
const KEY_LEN: usize = 16;

struct Heap {
    bytes: Vec<u8>,
    stride: usize,
}

impl Heap {
    fn new(n: usize, value_len: usize) -> Heap {
        let stride = KEY_LEN + value_len;
        let mut bytes = vec![0u8; n * stride];
        for i in 0..n {
            bytes[i * stride..i * stride + KEY_LEN].copy_from_slice(key_bytes(i).as_slice());
        }
        Heap { bytes, stride }
    }

    #[inline]
    fn key_at(&self, off: u64) -> &[u8] {
        &self.bytes[off as usize..off as usize + KEY_LEN]
    }
}

fn key_bytes(i: usize) -> [u8; KEY_LEN] {
    let mut k = [0u8; KEY_LEN];
    k[..4].copy_from_slice(b"user");
    let digits = format!("{i:012}");
    k[4..].copy_from_slice(digits.as_bytes());
    k
}

/// Deterministic probe order: a full-period LCG walk over `[0, n)`.
fn probe_order(n: usize, ops: usize) -> Vec<u32> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..ops)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % n as u64) as u32
        })
        .collect()
}

fn bench_chained(
    t: &mut ChainedTable,
    heap: &Heap,
    hashes: &[u64],
    order: &[u32],
    batch: usize,
) -> f64 {
    let stride = heap.stride as u64;
    let start = Instant::now();
    let mut hits = 0usize;
    if batch == 1 {
        for &i in order {
            let want = i as u64 * stride;
            if t.lookup(hashes[i as usize], |off| {
                heap.key_at(off) == heap.key_at(want)
            }) == Some(want)
            {
                hits += 1;
            }
        }
    } else {
        let mut hbuf = [0u64; LOOKUP_BATCH];
        let mut out = [None; LOOKUP_BATCH];
        for chunk in order.chunks_exact(batch) {
            for (j, &i) in chunk.iter().enumerate() {
                hbuf[j] = hashes[i as usize];
            }
            t.lookup_batch(&hbuf[..batch], &mut out[..batch], |j, off| {
                heap.key_at(off) == heap.key_at(chunk[j] as u64 * stride)
            });
            hits += out[..batch].iter().filter(|o| o.is_some()).count();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(hits, order.len() / batch * batch, "all probes must hit");
    hits as f64 / secs / 1e6
}

fn bench_packed(
    t: &mut PackedTable,
    heap: &Heap,
    hashes: &[u64],
    order: &[u32],
    batch: usize,
) -> f64 {
    let stride = heap.stride as u64;
    let start = Instant::now();
    let mut hits = 0usize;
    if batch == 1 {
        for &i in order {
            let want = i as u64 * stride;
            if t.lookup(hashes[i as usize], |off| {
                heap.key_at(off) == heap.key_at(want)
            }) == Some(want)
            {
                hits += 1;
            }
        }
    } else {
        let mut hbuf = [0u64; LOOKUP_BATCH];
        let mut out = [None; LOOKUP_BATCH];
        for chunk in order.chunks_exact(batch) {
            for (j, &i) in chunk.iter().enumerate() {
                hbuf[j] = hashes[i as usize];
            }
            t.lookup_batch(&hbuf[..batch], &mut out[..batch], |j, off| {
                heap.key_at(off) == heap.key_at(chunk[j] as u64 * stride)
            });
            hits += out[..batch].iter().filter(|o| o.is_some()).count();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(hits, order.len() / batch * batch, "all probes must hit");
    hits as f64 / secs / 1e6
}

fn main() {
    let scale = Scale::from_env();
    // Groups sized so load factor 0.9 holds ~`records()` entries.
    let groups = ((scale.records() as usize) / GROUP_SLOTS)
        .next_power_of_two()
        .max(64);
    let slots = groups * GROUP_SLOTS;
    let ops = match scale {
        Scale::Smoke => 200_000,
        Scale::Normal => 4_000_000,
        Scale::Paper => 20_000_000,
    };

    let mut report = Report::new(
        "BENCH_index",
        "Index probe throughput: packed cache-line groups vs chained lists",
    );
    report.line(&format!(
        "# {groups} groups ({slots} slots); {ops} hit-probes per cell; 16 B keys"
    ));
    report.line(&format!(
        "{:<6} {:>6} {:>6} {:>14} {:>14} {:>9}",
        "lf", "value", "batch", "chained_mops", "packed_mops", "speedup"
    ));

    let mut headline = 0.0f64;
    for &lf in &[0.5f64, 0.7, 0.9] {
        let n = (lf * slots as f64) as usize;
        for &value_len in &[16usize, 32, 256] {
            let heap = Heap::new(n, value_len);
            let hashes: Vec<u64> = (0..n).map(|i| hash_key(&key_bytes(i))).collect();
            // Growth disabled: the load factor under test stays pinned.
            let mut packed = PackedTable::with_max_load(groups, 8);
            let mut chained = ChainedTable::new((n / 4).max(16));
            for (i, &h) in hashes.iter().enumerate() {
                let off = (i * heap.stride) as u64;
                packed.insert(h, off, |_| unreachable!("growth disabled"));
                chained.insert(h, off);
            }
            for &batch in &[1usize, 8, 16] {
                let order = probe_order(n, ops);
                // Warm both structures' caches identically, then measure.
                let _ = bench_chained(&mut chained, &heap, &hashes, &order[..ops / 10], batch);
                let _ = bench_packed(&mut packed, &heap, &hashes, &order[..ops / 10], batch);
                let c = bench_chained(&mut chained, &heap, &hashes, &order, batch);
                let p = bench_packed(&mut packed, &heap, &hashes, &order, batch);
                let speedup = p / c;
                if (lf - 0.9).abs() < 1e-9 && value_len == 32 && batch == 1 {
                    headline = speedup;
                }
                report.line(&format!(
                    "{:<6.2} {:>6} {:>6} {:>14.2} {:>14.2} {:>8.2}x",
                    lf, value_len, batch, c, p, speedup
                ));
                report.datum(
                    &format!("lf{:02}_v{}_b{}", (lf * 100.0) as u32, value_len, batch),
                    serde_json::json!({
                        "load_factor": lf,
                        "value_len": value_len,
                        "batch": batch,
                        "chained_mops": c,
                        "packed_mops": p,
                        "speedup": speedup,
                    }),
                );
            }
        }
    }
    report.datum("speedup_lf90_v32_b1", headline);
    report.line(&format!(
        "# headline: packed is {headline:.2}x chained on single-key probes at LF 0.9 / 32 B values"
    ));
    report.line("# packed touches one 64 B line per group probed (tags + slots inline);");
    report.line("# chained dereferences one heap node per chain hop");
    report.save();
}
