//! Figure 2 — MapReduce/Spark acceleration: job speedup of a HydraDB cache
//! layer (TCP and RDMA modes) over in-memory HDFS, per §2.1.
//!
//! Each job processes `B` HDFS blocks; a block is one 4 MiB key-value chunk
//! (the production integration splits a block into 4 MiB chunks — we use one
//! chunk per block at benchmark scale). I/O time is measured by replaying
//! the block reads/writes against each storage system; compute time per
//! block is the application model. Speedup = job time on in-memory HDFS /
//! job time on HydraDB.

use std::cell::Cell;
use std::rc::Rc;

use hydra_baselines::{BaselineCluster, BaselineConfig, BaselineKind};
use hydra_bench::{Report, Scale};
use hydra_db::{ClientMode, ClusterBuilder, ClusterConfig};
use hydra_fabric::Transport;
use hydra_sim::time::{as_secs, MS};
use hydra_sim::Sim;
use hydra_ycsb::{KvCb, KvClient};

const BLOCK: usize = 4 << 20; // 4 MiB chunks, as in §2.1

/// (name, blocks read, blocks written, compute per block)
fn apps(scale: Scale) -> Vec<(&'static str, u64, u64, u64)> {
    let b: u64 = match scale {
        Scale::Smoke => 4,
        Scale::Normal => 16,
        Scale::Paper => 64,
    };
    vec![
        ("Hadoop TestDFSIO-read", b, 0, 0),
        ("Hadoop DataLoading", 0, b, 0),
        ("Hadoop Aggregation", b, b / 4, 4 * MS),
        ("Hadoop WordCount", b, 0, 12 * MS),
        ("Spark Scan", b, 0, 25 * MS),
        ("Spark Iterative (5x)", 5 * b, 0, 45 * MS),
    ]
}

/// Sequentially reads/writes blocks through any KvClient; returns IO time.
fn run_io<C: KvClient>(sim: &mut Sim, client: &C, reads: u64, writes: u64) -> u64 {
    let t0 = sim.now();
    let done = Rc::new(Cell::new(false));
    fn step<C: KvClient>(
        sim: &mut Sim,
        client: C,
        i: u64,
        reads: u64,
        writes: u64,
        done: Rc<Cell<bool>>,
    ) {
        if i >= reads + writes {
            done.set(true);
            return;
        }
        let c2 = client.clone();
        let cont: KvCb = Box::new(move |sim, r| {
            r.expect("block io succeeds");
            step(sim, c2, i + 1, reads, writes, done);
        });
        if i < reads {
            let key = format!("block-{:08}", i % reads.max(1));
            client.kv_get(sim, key.as_bytes(), cont);
        } else {
            let key = format!("out-{:08}", i - reads);
            client.kv_insert(sim, key.as_bytes(), &vec![0x5A; BLOCK], cont);
        }
    }
    step(sim, client.clone(), 0, reads, writes, done.clone());
    sim.run();
    assert!(done.get());
    sim.now() - t0
}

/// Preloads `blocks` input blocks.
fn preload<C: KvClient>(sim: &mut Sim, client: &C, blocks: u64) {
    let done = Rc::new(Cell::new(false));
    fn step<C: KvClient>(sim: &mut Sim, client: C, i: u64, blocks: u64, done: Rc<Cell<bool>>) {
        if i >= blocks {
            done.set(true);
            return;
        }
        let key = format!("block-{i:08}");
        let c2 = client.clone();
        client.kv_insert(
            sim,
            key.as_bytes(),
            &vec![0xA5; BLOCK],
            Box::new(move |sim, r| {
                r.expect("preload succeeds");
                step(sim, c2, i + 1, blocks, done);
            }),
        );
    }
    step(sim, client.clone(), 0, blocks, done.clone());
    sim.run();
    assert!(done.get());
}

fn hdfs_io(reads: u64, writes: u64, preload_blocks: u64) -> u64 {
    // In-memory HDFS: socket path with JVM/checksum/copy overheads — the
    // per-byte cost of a 2015-era single-stream HDFS read (~0.45 GB/s).
    let fabric = hydra_fabric::FabricConfig {
        socket_byte_ns: 2.2,
        socket_op_ns: 60_000, // NameNode lookup + DataNode session per op
        ..Default::default()
    };
    let cfg = BaselineConfig {
        kind: BaselineKind::MemcachedLike {
            threads: 8,
            lock_ns: 300,
            op_ns: 2_000,
        },
        instances: 1,
        arena_words: 1 << 26,
        expected_items: 1 << 10,
        fabric,
        ..BaselineConfig::memcached()
    };
    let mut c = BaselineCluster::build(cfg);
    let client = c.add_client(0);
    preload(&mut c.sim, &client, preload_blocks);
    run_io(&mut c.sim, &client, reads, writes)
}

fn hydra_io(rdma: bool, reads: u64, writes: u64, preload_blocks: u64) -> u64 {
    let cfg = ClusterConfig {
        server_nodes: 1,
        shards_per_node: 4,
        client_nodes: 1,
        client_mode: if rdma {
            ClientMode::RdmaWriteRead
        } else {
            ClientMode::SendRecv
        },
        transport: if rdma {
            Transport::Rdma
        } else {
            Transport::Socket
        },
        msg_slot_words: 1 << 20, // 8 MiB message slots for 4 MiB chunks
        arena_words: 1 << 25,    // 256 MiB per shard
        expected_items: 1 << 10,
        op_timeout_ns: 500 * MS, // large transfers over sockets are slow
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterBuilder::new(cfg).build();
    let client = cluster.add_client(0);
    preload(&mut cluster.sim, &client, preload_blocks);
    run_io(&mut cluster.sim, &client, reads, writes)
}

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "fig02_mapreduce",
        "Fig. 2: Hadoop/Spark speedup of HydraDB (TCP & RDMA) over in-memory HDFS",
    );
    report.line(&format!(
        "{:<24} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "application", "HDFS_s", "HydraTCP_s", "HydraRDMA_s", "spd_TCP", "spd_RDMA"
    ));
    for (name, reads, writes, compute) in apps(scale) {
        let preload_blocks = reads.max(1);
        let hdfs = hdfs_io(reads, writes, preload_blocks) + compute * (reads + writes);
        let tcp = hydra_io(false, reads, writes, preload_blocks) + compute * (reads + writes);
        let rdma = hydra_io(true, reads, writes, preload_blocks) + compute * (reads + writes);
        report.line(&format!(
            "{:<24} {:>12.3} {:>12.3} {:>12.3} {:>9.2}x {:>9.2}x",
            name,
            as_secs(hdfs),
            as_secs(tcp),
            as_secs(rdma),
            hdfs as f64 / tcp as f64,
            hdfs as f64 / rdma as f64,
        ));
        report.datum(
            name,
            serde_json::json!({
                "hdfs_s": as_secs(hdfs),
                "hydra_tcp_s": as_secs(tcp),
                "hydra_rdma_s": as_secs(rdma),
                "speedup_tcp": hdfs as f64 / tcp as f64,
                "speedup_rdma": hdfs as f64 / rdma as f64,
            }),
        );
    }
    report.line("# paper anchors: I/O-bound Hadoop jobs up to 17.9x; Spark jobs 4%-41%; RDMA > TCP everywhere");
    report.save();
}
