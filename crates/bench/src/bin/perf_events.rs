//! Hot-path wall-clock benchmark for this PR's zero-allocation work.
//!
//! Three measurements, written to `results/BENCH_hotpath.json`:
//!
//! 1. **Event throughput** — the slab + timer-wheel scheduler
//!    ([`hydra_sim::Sim`]) against the seed's boxed-closure binary-heap
//!    scheduler (kept verbatim as [`hydra_sim::reference::Sim`]), on the
//!    same deterministic workloads. The acceptance bar for the PR is a
//!    ≥2× speedup on event churn.
//! 2. **Dispatch throughput** — wall-clock ops/sec of a full simulated
//!    cluster running a GET-heavy workload through the borrowed-decode
//!    server path.
//! 3. **Peak RSS** — `VmHWM` from `/proc/self/status`, recorded after the
//!    runs as a coarse memory footprint check.
//!
//! Both schedulers expose the same API, so each workload is written once
//! as a macro and instantiated per scheduler type.

use std::time::Instant;

use hydra_bench::{one_workload, paper_cluster_config, Report, Scale};

/// Self-perpetuating timer churn: `fanout` events each reschedule
/// themselves at a pseudorandom small delay until `total` events have
/// fired. This is the steady-state shape of the simulator under load —
/// every fire allocates (seed) or reuses a slab cell (new).
macro_rules! churn_events {
    ($sim_ty:ty, $fanout:expr, $total:expr) => {{
        use std::cell::Cell;
        use std::rc::Rc;
        let mut sim = <$sim_ty>::new(7);
        let fired = Rc::new(Cell::new(0u64));
        let total: u64 = $total;
        // Each of the `fanout` chains stops rearming once the whole run has
        // `fanout` events left, so exactly `total` fire overall.
        let stop: u64 = total - $fanout as u64;
        fn rearm(sim: &mut $sim_ty, fired: Rc<Cell<u64>>, stop: u64, state: u64) {
            let n = fired.get() + 1;
            fired.set(n);
            if n > stop {
                return;
            }
            // xorshift for the next delay: deterministic, allocation-free.
            let mut s = state ^ (state << 13);
            s ^= s >> 7;
            s ^= s << 17;
            let delay = 1 + s % 1_000;
            sim.schedule_in(delay, move |sim| rearm(sim, fired, stop, s));
        }
        for i in 0..$fanout {
            let f = fired.clone();
            let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
            sim.schedule_in(1 + seed % 1_000, move |sim| rearm(sim, f, stop, seed));
        }
        let t = Instant::now();
        sim.run();
        (t.elapsed(), fired.get())
    }};
}

/// Cancel-heavy churn: every fired event schedules two successors and
/// cancels one of them, so half of all scheduled events are cancelled in
/// flight. Exercises the seed's `HashSet` bookkeeping against the new
/// scheduler's generational tombstones.
macro_rules! churn_cancels {
    ($sim_ty:ty, $fanout:expr, $total:expr) => {{
        use std::cell::Cell;
        use std::rc::Rc;
        let mut sim = <$sim_ty>::new(7);
        let fired = Rc::new(Cell::new(0u64));
        let total: u64 = $total;
        let stop: u64 = total - $fanout as u64;
        fn rearm(sim: &mut $sim_ty, fired: Rc<Cell<u64>>, stop: u64, state: u64) {
            let n = fired.get() + 1;
            fired.set(n);
            if n > stop {
                return;
            }
            let mut s = state ^ (state << 13);
            s ^= s >> 7;
            s ^= s << 17;
            let keep = fired.clone();
            sim.schedule_in(1 + s % 500, move |sim| rearm(sim, keep, stop, s));
            let doomed = sim.schedule_in(1 + (s >> 32) % 500, |_| {
                panic!("cancelled event fired");
            });
            sim.cancel(doomed);
        }
        for i in 0..$fanout {
            let f = fired.clone();
            let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1);
            sim.schedule_in(1 + seed % 500, move |sim| rearm(sim, f, stop, seed));
        }
        let t = Instant::now();
        sim.run();
        (t.elapsed(), fired.get())
    }};
}

fn events_per_sec(elapsed: std::time::Duration, fired: u64) -> f64 {
    fired as f64 / elapsed.as_secs_f64()
}

/// `VmHWM` (peak resident set) in KiB from `/proc/self/status`, or 0 when
/// unavailable (non-Linux).
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
        .unwrap_or(0)
}

fn main() {
    let scale = Scale::from_env();
    let (fanout, total) = match scale {
        Scale::Smoke => (1_024u32, 200_000u64),
        Scale::Normal => (4_096, 2_000_000),
        Scale::Paper => (4_096, 10_000_000),
    };
    let mut report = Report::new(
        "BENCH_hotpath",
        "Hot-path benchmark: slab+wheel scheduler vs seed heap, dispatch ops/sec, peak RSS",
    );

    report.line(&format!(
        "{:<22} {:>14} {:>14} {:>8}",
        "workload", "slab+wheel", "seed heap", "speedup"
    ));
    for (name, run_wheel, run_heap) in [
        (
            "timer_churn",
            churn_events!(hydra_sim::Sim, fanout, total),
            churn_events!(hydra_sim::reference::Sim, fanout, total),
        ),
        (
            "cancel_churn",
            churn_cancels!(hydra_sim::Sim, fanout, total / 2),
            churn_cancels!(hydra_sim::reference::Sim, fanout, total / 2),
        ),
    ] {
        let (wheel_t, wheel_n) = run_wheel;
        let (heap_t, heap_n) = run_heap;
        assert_eq!(wheel_n, heap_n, "schedulers must fire the same event count");
        let wheel_eps = events_per_sec(wheel_t, wheel_n);
        let heap_eps = events_per_sec(heap_t, heap_n);
        let speedup = wheel_eps / heap_eps;
        report.line(&format!(
            "{:<22} {:>11.2} M/s {:>11.2} M/s {:>7.2}x",
            name,
            wheel_eps / 1e6,
            heap_eps / 1e6,
            speedup
        ));
        report.datum(&format!("{name}/events_per_sec_slab_wheel"), wheel_eps);
        report.datum(&format!("{name}/events_per_sec_seed_heap"), heap_eps);
        report.datum(&format!("{name}/speedup"), speedup);
        report.datum(&format!("{name}/events_fired"), wheel_n);
    }

    // Full-cluster dispatch: wall-clock cost of the borrowed-decode server
    // path under a GET-heavy Zipfian workload.
    let wl = one_workload(scale, 0.9, true, 11);
    let t = Instant::now();
    let wr = hydra_bench::run_hydra(paper_cluster_config(), 50, &wl);
    let wall = t.elapsed();
    let wall_ops_per_sec = wr.ops as f64 / wall.as_secs_f64();
    report.line(&format!(
        "{:<22} {:>11.2} k/s  ({} ops in {:.2}s wall, {:.3} simulated Mops)",
        "dispatch_get_heavy",
        wall_ops_per_sec / 1e3,
        wr.ops,
        wall.as_secs_f64(),
        wr.mops
    ));
    report.datum("dispatch/wall_ops_per_sec", wall_ops_per_sec);
    report.datum("dispatch/ops", wr.ops);
    report.datum("dispatch/simulated_mops", wr.mops);

    let rss = peak_rss_kib();
    report.line(&format!("peak RSS: {} KiB", rss));
    report.datum("peak_rss_kib", rss);
    report.datum("scale", format!("{scale:?}"));
    report.save();
}
