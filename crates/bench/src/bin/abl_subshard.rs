//! A-SUBSHARD — the §6.3 future-work proposal, implemented and measured:
//! "too many RDMA connections can prevent HydraDB from scaling out on a
//! single machine. A potential solution is a sub-sharding mechanism to allow
//! a single shard instance to use multiple cores for independent sub-shards
//! while the main process maintains all the connections."
//!
//! Compares, on one 8-core server machine under growing client counts:
//!   (A) 8 independent shard instances  -> clients x 8 QPs at the driver;
//!   (B) 1 instance with 8 sub-shards   -> clients x 1 QPs.

use hydra_bench::{one_workload, Report, Scale};
use hydra_db::{ClusterConfig, ExecModel};
use hydra_ycsb::{run_workload, DriverConfig, Workload};

fn run(clients: usize, exec: ExecModel, shards: u32, wl: &Workload) -> (f64, u32) {
    let cfg = ClusterConfig {
        server_nodes: 1,
        shards_per_node: shards,
        client_nodes: 6,
        exec_model: exec,
        arena_words: 1 << 23,
        expected_items: 1 << 20,
        ..ClusterConfig::default()
    };
    let nodes = cfg.client_nodes as usize;
    let mut cluster = hydra_db::ClusterBuilder::new(cfg).build();
    let cs: Vec<_> = (0..clients)
        .map(|i| cluster.add_client(i % nodes))
        .collect();
    let r = run_workload(&mut cluster.sim, &cs, wl, &DriverConfig::default());
    let qps = cluster.fab.qp_count(cluster.server_nodes[0]);
    (r.mops, qps)
}

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "abl_subshard",
        "A-SUBSHARD: 8 shard instances vs 1 instance with 8 sub-shards (one 8-core server)",
    );
    report.line(&format!(
        "{:<10} {:>14} {:>10} {:>16} {:>10} {:>8}",
        "clients", "8-shards Mops", "QPs", "sub-shard Mops", "QPs", "gain"
    ));
    for clients in [30usize, 60, 90, 120] {
        let wl = Workload {
            ops: (scale.ops() / 2).max(10_000),
            ..one_workload(scale, 0.5, false, 61)
        };
        let (flat, flat_qps) = run(clients, ExecModel::SingleThreaded, 8, &wl);
        let (sub, sub_qps) = run(clients, ExecModel::SubSharded { subs: 8 }, 1, &wl);
        report.line(&format!(
            "{:<10} {:>14.3} {:>10} {:>16.3} {:>10} {:>7.1}%",
            clients,
            flat,
            flat_qps,
            sub,
            sub_qps,
            (sub / flat - 1.0) * 100.0
        ));
        report.datum(
            &format!("{clients}"),
            serde_json::json!({
                "flat_mops": flat, "flat_qps": flat_qps,
                "subshard_mops": sub, "subshard_qps": sub_qps,
            }),
        );
    }
    report.line("# sub-sharding keeps driver QP counts flat; its advantage appears exactly when clients x shards crosses the driver threshold");
    report.save();
}
