//! BENCH_batching — doorbell-batched verbs and batched request execution.
//!
//! Measures the end-to-end win of the batching/pipelining layer on the
//! paper's serving setup (1 server x 4 shards, 50 clients): clients run
//! read-only Zipfian GETs through the RDMA-Write message path, either
//! closed-loop (depth 1, every request its own frame, WQE and doorbell)
//! or pipelined (depth d, up to b requests per batch frame; the server
//! drains the frame in one quantum with interleaved index probing and one
//! response frame).
//!
//! Both arms charge the same measured WQE-build + doorbell MMIO cost
//! (`post_wqe_ns = 180`) so the comparison isolates batching, not a cost
//! model asymmetry: the default configuration keeps `post_wqe_ns = 0` and
//! is untouched by this study.
//!
//! The AIMD congestion window (on by default) is disabled here: this is an
//! ablation of *fixed-depth* batching, and an adaptive controller would
//! fight the very knob the grid sweeps (at depth 64 it throttles the window
//! to cap client-observed latency, which is its job in production and
//! exactly wrong in a throughput ablation — `perf_mix` covers the adaptive
//! behaviour).

use hydra_bench::{one_workload, paper_cluster_config, Report, ReportRow, Scale};
use hydra_db::{AimdConfig, ClientMode, ClusterBuilder, ClusterConfig};
use hydra_ycsb::{run_workload, DriverConfig};

const CLIENTS: usize = 50;
const POST_WQE_NS: u64 = 180;

fn run_point(depth: usize, batch: usize, scale: Scale) -> (hydra_ycsb::WorkloadReport, f64) {
    let mut cfg = ClusterConfig {
        client_mode: ClientMode::RdmaWrite,
        pipeline_depth: depth,
        max_batch: batch,
        aimd: AimdConfig {
            enabled: false,
            ..AimdConfig::default()
        },
        ..paper_cluster_config()
    };
    cfg.costs.post_wqe_ns = POST_WQE_NS;
    let wl = one_workload(scale, 1.0, true, 33);
    let nodes = cfg.client_nodes as usize;
    let mut cluster = ClusterBuilder::new(cfg).build();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| cluster.add_client(i % nodes))
        .collect();
    let dcfg = DriverConfig {
        window: depth,
        ..DriverConfig::default()
    };
    let db0 = cluster.fab.stats().doorbells;
    let r = run_workload(&mut cluster.sim, &clients, &wl, &dcfg);
    let doorbells = cluster.fab.stats().doorbells - db0;
    let per_op = doorbells as f64 / r.ops.max(1) as f64;
    (r, per_op)
}

fn main() {
    let scale = Scale::from_env();
    let mut report = Report::new(
        "BENCH_batching",
        "Doorbell batching + batched execution: GET throughput vs pipeline depth / batch size",
    );
    report.line(&format!(
        "{:<14} {:>10} {:>12} {:>12} {:>14}",
        "depth/batch", "Mops", "get_us", "p99_us", "doorbells/op"
    ));
    let grid = [(1usize, 1usize), (4, 4), (16, 16), (64, 16)];
    let mut baseline = 0.0;
    let mut speedup_d64_b16 = 0.0;
    for (depth, batch) in grid {
        let (r, per_op) = run_point(depth, batch, scale);
        if depth == 1 {
            baseline = r.mops;
        }
        if depth == 64 {
            speedup_d64_b16 = r.mops / baseline;
        }
        report.line(&format!(
            "{:<14} {:>10.3} {:>12.2} {:>12.2} {:>14.2}",
            format!("d{depth} b{batch}"),
            r.mops,
            r.get_mean_us,
            r.get_p99_us,
            per_op
        ));
        report.datum(&format!("d{depth}_b{batch}"), ReportRow::from(&r));
        report.datum(&format!("d{depth}_b{batch}_doorbells_per_op"), per_op);
    }
    report.line(&format!(
        "# speedup d64/b16 over closed-loop: {speedup_d64_b16:.2}x (acceptance floor 1.5x)"
    ));
    report.datum("speedup_d64_b16", speedup_d64_b16);
    report.save();
    assert!(
        speedup_d64_b16 >= 1.5,
        "batched pipeline must deliver >= 1.5x GETs ({speedup_d64_b16:.2}x)"
    );
}
