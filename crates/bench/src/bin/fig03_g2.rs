//! Figure 3 — G2 Sensemaking scaling: aggregated throughput as analytics
//! engines are added, HydraDB vs the lock-serialized in-memory database it
//! replaced (§2.2). Each engine continuously performs entity lookups (60%)
//! and assertion writes (40%) against the shared store.

use hydra_baselines::{BaselineCluster, BaselineConfig};
use hydra_bench::{paper_cluster_config, Report, Scale};
use hydra_ycsb::{run_workload, DriverConfig, KeyDist, Workload};

fn wl(scale: Scale) -> Workload {
    Workload {
        records: scale.records() / 2,
        ops: scale.ops() / 2,
        read_ratio: 0.6,
        dist: KeyDist::zipfian(),
        key_len: 16,
        value_len: 64, // protobuf-packed entity rows are a bit larger
        seed: 3,
        mix: hydra_ycsb::OpMix::ReadUpdate,
    }
}

fn main() {
    let scale = Scale::from_env();
    let engines = [1usize, 2, 4, 8, 16, 32, 64];
    let mut report = Report::new(
        "fig03_g2",
        "Fig. 3: G2 engines vs aggregated throughput — HydraDB vs in-memory DB",
    );
    report.line(&format!(
        "{:<10} {:>14} {:>14} {:>8}",
        "engines", "inmem-DB Mops", "HydraDB Mops", "ratio"
    ));
    let mut db_prev = 0.0;
    let mut db_sat = None;
    let mut hydra_sat = None;
    let mut hydra_prev = 0.0;
    for &n in &engines {
        let db = {
            let mut c = BaselineCluster::build(BaselineConfig::g2db());
            let clients: Vec<_> = (0..n).map(|i| c.add_client(i % 5)).collect();
            run_workload(&mut c.sim, &clients, &wl(scale), &DriverConfig::default()).mops
        };
        let hydra = {
            let cfg = paper_cluster_config();
            hydra_bench::run_hydra(cfg, n, &wl(scale))
        }
        .mops;
        if db_sat.is_none() && db_prev > 0.0 && db < db_prev * 1.10 {
            db_sat = Some(n);
        }
        if hydra_sat.is_none() && hydra_prev > 0.0 && hydra < hydra_prev * 1.10 {
            hydra_sat = Some(n);
        }
        db_prev = db;
        hydra_prev = hydra;
        report.line(&format!(
            "{:<10} {:>14.3} {:>14.3} {:>7.1}x",
            n,
            db,
            hydra,
            hydra / db
        ));
        report.datum(&format!("db/{n}"), db);
        report.datum(&format!("hydra/{n}"), hydra);
    }
    let fmt_sat = |s: Option<usize>| s.map_or("64+".to_string(), |n| n.to_string());
    report.line(&format!(
        "# knee of the curve: in-memory DB gains <10% past ~{} engines; HydraDB keeps scaling to ~{} — paper: HydraDB sustains 4x more engines at ~10x the throughput",
        fmt_sat(db_sat),
        fmt_sat(hydra_sat)
    ));
    report.save();
}
