//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md's per-experiment index): it prints the
//! same rows/series the paper reports and writes both a text and a JSON copy
//! under `results/`. Absolute numbers come from the calibrated simulator —
//! only shapes and ratios are claimed (EXPERIMENTS.md).
//!
//! Scale: the paper runs 60 M requests over 60 M records. The default here
//! is 100 K records / 120 K requests, past the point where the simulated
//! throughput and latency distributions stabilize; set `HYDRA_SCALE=paper`
//! for a 10× larger run or `HYDRA_SCALE=smoke` for CI-speed smoke output.

use std::fmt::Write as _;
use std::path::PathBuf;

use hydra_db::{ClientMode, Cluster, ClusterBuilder, ClusterConfig, HydraClient};
use hydra_ycsb::{run_workload, DriverConfig, KeyDist, Workload, WorkloadReport};

/// Run-scale knob decoded from `HYDRA_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-speed sanity output.
    Smoke,
    /// Default: stable shapes in seconds of wall time.
    Normal,
    /// 10× the default (minutes of wall time).
    Paper,
}

impl Scale {
    /// Reads `HYDRA_SCALE` (smoke|normal|paper).
    pub fn from_env() -> Scale {
        match std::env::var("HYDRA_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            _ => Scale::Normal,
        }
    }

    /// Records loaded per experiment.
    pub fn records(self) -> u64 {
        match self {
            Scale::Smoke => 5_000,
            Scale::Normal => 100_000,
            Scale::Paper => 1_000_000,
        }
    }

    /// Requests replayed per experiment.
    pub fn ops(self) -> u64 {
        match self {
            Scale::Smoke => 10_000,
            Scale::Normal => 120_000,
            Scale::Paper => 1_200_000,
        }
    }
}

/// The six §6 workloads at the chosen scale. `seed` is the experiment's
/// default; `HYDRA_SEED` overrides it, so one env var repins every RNG in a
/// run (cluster sim, workload streams, fault plans).
pub fn paper_workloads(scale: Scale, seed: u64) -> Vec<(String, Workload)> {
    Workload::paper_suite(scale.records(), scale.ops(), hydra_sim::seed_from_env(seed))
}

/// A single Zipfian/Uniform workload at the chosen scale (`HYDRA_SEED`
/// overrides `seed`, as in [`paper_workloads`]).
pub fn one_workload(scale: Scale, read_ratio: f64, zipf: bool, seed: u64) -> Workload {
    let seed = hydra_sim::seed_from_env(seed);
    Workload {
        records: scale.records(),
        ops: scale.ops(),
        read_ratio,
        dist: if zipf {
            KeyDist::zipfian()
        } else {
            KeyDist::Uniform
        },
        key_len: 16,
        value_len: 32,
        seed,
        mix: hydra_ycsb::OpMix::ReadUpdate,
    }
}

/// The paper's single-machine serving setup: 1 server with 4 shards, 50
/// clients over 5 client machines (§6).
pub fn paper_cluster_config() -> ClusterConfig {
    ClusterConfig {
        server_nodes: 1,
        shards_per_node: 4,
        client_nodes: 5,
        arena_words: 1 << 23, // 64 MiB per shard: fits the default scale
        expected_items: 1 << 20,
        ..ClusterConfig::default()
    }
}

/// Builds the cluster and its 50 clients.
pub fn paper_cluster(cfg: ClusterConfig, clients: usize) -> (Cluster, Vec<HydraClient>) {
    let nodes = cfg.client_nodes.max(1) as usize;
    let mut cluster = ClusterBuilder::new(cfg).build();
    let clients = (0..clients)
        .map(|i| cluster.add_client(i % nodes))
        .collect();
    (cluster, clients)
}

/// Runs one workload on a fresh cluster built from `cfg`.
pub fn run_hydra(cfg: ClusterConfig, clients: usize, wl: &Workload) -> WorkloadReport {
    let (mut cluster, clients) = paper_cluster(cfg, clients);
    run_workload(&mut cluster.sim, &clients, wl, &DriverConfig::default())
}

/// Accumulates the report text and mirrors it to stdout.
pub struct Report {
    name: &'static str,
    text: String,
    json: serde_json::Map<String, serde_json::Value>,
}

impl Report {
    /// Starts a report for figure `name` (e.g. `"fig09_overall"`).
    pub fn new(name: &'static str, title: &str) -> Report {
        let mut r = Report {
            name,
            text: String::new(),
            json: serde_json::Map::new(),
        };
        r.line(&format!("# {title}"));
        r.line(&format!(
            "# scale={:?} (set HYDRA_SCALE=smoke|normal|paper)",
            Scale::from_env()
        ));
        r
    }

    /// Appends (and prints) one line.
    pub fn line(&mut self, s: &str) {
        println!("{s}");
        let _ = writeln!(self.text, "{s}");
    }

    /// Records a machine-readable datum.
    pub fn datum(&mut self, key: &str, value: impl serde::Serialize) {
        self.json.insert(
            key.to_string(),
            serde_json::to_value(value).expect("serializable datum"),
        );
    }

    /// Writes `results/<name>.txt` and `results/<name>.json`.
    pub fn save(self) {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("create results dir");
        std::fs::write(dir.join(format!("{}.txt", self.name)), &self.text)
            .expect("write text report");
        std::fs::write(
            dir.join(format!("{}.json", self.name)),
            serde_json::to_string_pretty(&serde_json::Value::Object(self.json))
                .expect("serialize json"),
        )
        .expect("write json report");
        println!("# saved to {}/{}.{{txt,json}}", dir.display(), self.name);
    }
}

/// `results/` relative to the workspace root, or `HYDRA_RESULTS_DIR` when
/// set (CI smoke runs point it at a scratch directory so committed results
/// are never clobbered by reduced-scale output).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HYDRA_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Serializable subset of a [`WorkloadReport`] for the JSON artifacts.
pub struct ReportRow {
    pub mops: f64,
    pub get_mean_us: f64,
    pub get_p99_us: f64,
    pub update_mean_us: f64,
    pub rptr_hits: u64,
    pub invalid_hits: u64,
    pub msg_gets: u64,
}

impl serde::Serialize for ReportRow {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "mops": self.mops,
            "get_mean_us": self.get_mean_us,
            "get_p99_us": self.get_p99_us,
            "update_mean_us": self.update_mean_us,
            "rptr_hits": self.rptr_hits,
            "invalid_hits": self.invalid_hits,
            "msg_gets": self.msg_gets,
        })
    }
}

impl From<&WorkloadReport> for ReportRow {
    fn from(r: &WorkloadReport) -> Self {
        ReportRow {
            mops: r.mops,
            get_mean_us: r.get_mean_us,
            get_p99_us: r.get_p99_us,
            update_mean_us: r.update_mean_us,
            rptr_hits: r.rptr_hits,
            invalid_hits: r.invalid_hits,
            msg_gets: r.msg_gets,
        }
    }
}

/// The §6.2 client-mode design points, in presentation order.
pub fn design_points() -> [(&'static str, ClientMode); 3] {
    [
        ("Send/Recv", ClientMode::SendRecv),
        ("RDMA Write Only", ClientMode::RdmaWrite),
        ("RDMA Write + Read", ClientMode::RdmaWriteRead),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        assert_eq!(Scale::Smoke.records(), 5_000);
        assert!(Scale::Paper.ops() > Scale::Normal.ops());
    }

    #[test]
    fn workload_suite_has_six_entries() {
        assert_eq!(paper_workloads(Scale::Smoke, 1).len(), 6);
    }

    #[test]
    fn results_dir_points_into_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
