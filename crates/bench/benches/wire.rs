//! Hot-path costs of the wire layer: indicator framing and request/response
//! codecs (§4.2.1).

use std::sync::atomic::AtomicU64;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_wire::{frame, RemotePtr, Request, Response, Status};

fn bench_framing(c: &mut Criterion) {
    let mut g = c.benchmark_group("frame_roundtrip");
    for &len in &[32usize, 256, 4096] {
        let payload = vec![0xABu8; len];
        let slot: Vec<AtomicU64> = (0..frame::frame_words(len) + 2)
            .map(|_| AtomicU64::new(0))
            .collect();
        g.bench_function(BenchmarkId::new("write_poll_consume", len), |b| {
            b.iter(|| {
                frame::write_message(&slot, &payload).unwrap();
                let got = frame::poll_message(&slot).unwrap().unwrap();
                frame::consume_message(&slot, got.len());
                black_box(got.len())
            })
        });
        g.bench_function(BenchmarkId::new("frame_to_words", len), |b| {
            b.iter(|| black_box(frame::frame_to_words(&payload).len()))
        });
    }
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    let key = [0x11u8; 16];
    let value = [0x22u8; 32];
    g.bench_function("request_encode_decode", |b| {
        b.iter(|| {
            let enc = Request::Insert {
                req_id: 7,
                key: &key,
                value: &value,
            }
            .encode();
            let dec = Request::decode(&enc).unwrap();
            black_box(dec.req_id())
        })
    });
    let resp = Response {
        status: Status::Ok,
        req_id: 7,
        value: &value,
        rptr: RemotePtr::new(1, 4096, 64),
        lease_expiry: 123,
        replicas: None,
    };
    g.bench_function("response_encode_decode", |b| {
        b.iter(|| {
            let enc = resp.encode();
            let dec = Response::decode(&enc).unwrap();
            black_box(dec.lease_expiry)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_framing, bench_codec);
criterion_main!(benches);
