//! Lock-free shared pointer-cache map costs (§4.2.4), single-threaded and
//! under cross-thread contention.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydra_lockfree::LockFreeMap;

fn bench_single(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockfree_single");
    let m: LockFreeMap<u64, u64> = LockFreeMap::new(4096);
    for i in 0..10_000u64 {
        m.insert(i, i);
    }
    g.bench_function("get_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(m.get(&i))
        })
    });
    g.bench_function("insert_replace", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(m.insert(i, i * 2))
        })
    });
    g.bench_function("insert_remove_cycle", |b| {
        let mut i = 20_000u64;
        b.iter(|| {
            i += 1;
            m.insert(i, i);
            black_box(m.remove(&i))
        })
    });
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("lockfree_contended");
    g.sample_size(10);
    g.bench_function("4thread_mixed_100k_ops", |b| {
        b.iter(|| {
            let m: Arc<LockFreeMap<u64, u64>> = Arc::new(LockFreeMap::new(1024));
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let m = m.clone();
                    std::thread::spawn(move || {
                        for i in 0..25_000u64 {
                            let k = (i * 7 + t) % 512;
                            match i % 3 {
                                0 => {
                                    m.insert(k, i);
                                }
                                1 => {
                                    black_box(m.get(&k));
                                }
                                _ => {
                                    m.remove(&k);
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single, bench_contended);
criterion_main!(benches);
