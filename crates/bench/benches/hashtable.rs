//! Wall-clock comparison of the packed cache-line-group table, the §4.1.3
//! compact table, the chained baseline, and `std::collections::HashMap`
//! (A-HASH, wall-time half).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_store::{hash_key, ChainedTable, CompactTable, PackedTable};

const N: usize = 100_000;

fn keys() -> Vec<Vec<u8>> {
    (0..N)
        .map(|i| format!("user{i:012}").into_bytes())
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let keys = keys();
    let hashes: Vec<u64> = keys.iter().map(|k| hash_key(k)).collect();

    let mut packed = PackedTable::with_capacity(N);
    let mut compact = CompactTable::with_capacity(N);
    let mut chained = ChainedTable::new(N / 4);
    let mut std_map = std::collections::HashMap::with_capacity(N);
    for (i, &h) in hashes.iter().enumerate() {
        packed.insert(h, i as u64, |off| hashes[off as usize]);
        compact.insert(h, i as u64);
        chained.insert(h, i as u64);
        std_map.insert(keys[i].clone(), i as u64);
    }

    let mut g = c.benchmark_group("lookup_hit");
    g.bench_function(BenchmarkId::new("packed", N), |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            black_box(packed.lookup(hashes[idx], |off| off == idx as u64))
        })
    });
    g.bench_function(BenchmarkId::new("compact", N), |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            black_box(compact.lookup(hashes[idx], |off| off == idx as u64))
        })
    });
    g.bench_function(BenchmarkId::new("chained", N), |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            black_box(chained.lookup(hashes[idx], |off| off == idx as u64))
        })
    });
    g.bench_function(BenchmarkId::new("std_hashmap", N), |b| {
        let mut i = 0;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            black_box(std_map.get(&keys[idx]))
        })
    });
    g.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let keys = keys();
    let hashes: Vec<u64> = keys.iter().map(|k| hash_key(k)).collect();
    let mut g = c.benchmark_group("insert_remove_cycle");
    g.bench_function("packed", |b| {
        let mut t = PackedTable::with_capacity(N);
        let mut i = 0usize;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            t.insert(hashes[idx], idx as u64, |off| hashes[off as usize]);
            black_box(t.remove(
                hashes[idx],
                |off| off == idx as u64,
                |off| hashes[off as usize],
            ));
        })
    });
    g.bench_function("compact", |b| {
        let mut t = CompactTable::with_capacity(N);
        let mut i = 0usize;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            t.insert(hashes[idx], idx as u64);
            black_box(t.remove(hashes[idx], |off| off == idx as u64));
        })
    });
    g.bench_function("chained", |b| {
        let mut t = ChainedTable::new(N / 4);
        let mut i = 0usize;
        b.iter(|| {
            let idx = i % N;
            i += 1;
            t.insert(hashes[idx], idx as u64);
            black_box(t.remove(hashes[idx], |off| off == idx as u64));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lookup, bench_insert_remove);
criterion_main!(benches);
