//! Shard-engine operation costs: the server-side CPU work per GET/UPDATE
//! that the cluster cost model abstracts as `get_ns`/`write_ns`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydra_store::{EngineConfig, IndexKind, ShardEngine, WriteMode};

fn engine_with(n: usize) -> ShardEngine {
    let mut e = ShardEngine::new(EngineConfig {
        arena_words: n * 16,
        expected_items: n,
        index: IndexKind::Packed,
        write_mode: WriteMode::Reliable,
        min_lease_ns: 1_000_000,
        max_lease_ns: 64_000_000,
    });
    for i in 0..n {
        let key = format!("user{i:012}");
        e.insert(0, key.as_bytes(), &[0xAB; 32]).unwrap();
    }
    e
}

fn bench_engine(c: &mut Criterion) {
    let n = 100_000;
    let keys: Vec<String> = (0..n).map(|i| format!("user{i:012}")).collect();
    let mut g = c.benchmark_group("engine");

    g.bench_function("get_hit", |b| {
        let mut e = engine_with(n);
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % n;
            black_box(e.get(1, keys[i].as_bytes()).is_some())
        })
    });
    g.bench_function("get_miss", |b| {
        let mut e = engine_with(n);
        b.iter(|| black_box(e.get(1, b"absent-key-000").is_none()))
    });
    g.bench_function("update_out_of_place", |b| {
        let mut e = engine_with(n);
        let mut i = 0usize;
        let mut now = 1u64;
        b.iter(|| {
            i = (i + 1) % n;
            now += 1;
            e.update(now, keys[i].as_bytes(), &[0xCD; 32]).unwrap();
            e.pump_reclaim(now + 100_000_000);
            black_box(now)
        })
    });
    g.bench_function("insert_delete_cycle", |b| {
        let mut e = engine_with(1_000);
        let mut now = 1u64;
        b.iter(|| {
            now += 1;
            e.insert(now, b"cycle-key-000000", &[0u8; 32]).unwrap();
            e.delete(now, b"cycle-key-000000").unwrap();
            e.pump_reclaim(now + 100_000_000);
            black_box(now)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
