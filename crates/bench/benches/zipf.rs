//! Workload-generation costs — the reason the paper (and this harness)
//! pre-generates request streams.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_ycsb::{KeyDist, Workload, ZipfianGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_draws(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf_draw");
    for &n in &[10_000u64, 1_000_000] {
        let gen = ZipfianGenerator::with_default_theta(n);
        let mut rng = SmallRng::seed_from_u64(1);
        g.bench_function(BenchmarkId::new("next_rank", n), |b| {
            b.iter(|| black_box(gen.next_rank(&mut rng)))
        });
        g.bench_function(BenchmarkId::new("next_scrambled", n), |b| {
            b.iter(|| black_box(gen.next_scrambled(&mut rng)))
        });
    }
    g.finish();
}

fn bench_pregen(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_pregen");
    g.sample_size(10);
    let wl = Workload {
        records: 100_000,
        ops: 100_000,
        read_ratio: 0.9,
        dist: KeyDist::zipfian(),
        key_len: 16,
        value_len: 32,
        seed: 1,
        mix: hydra_ycsb::OpMix::ReadUpdate,
    };
    g.bench_function("generate_100k_ops_8_clients", |b| {
        b.iter(|| black_box(wl.generate(8).len()))
    });
    g.finish();
}

criterion_group!(benches, bench_draws, bench_pregen);
criterion_main!(benches);
