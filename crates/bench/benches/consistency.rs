//! A-CONSISTENCY — guardian-word validation (HydraDB, §4.2.3) vs
//! Pilaf-style self-verifying checksums: the wall-clock cost of validating
//! one fetched item, across item sizes. The guardian check is O(1); the
//! checksum is O(size) on every read *and* every write.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hydra_store::{Arena, ChecksumItem, ChecksumVerdict, Crc64, FetchedItem, ItemRef};

fn bench_validation(c: &mut Criterion) {
    let crc = Crc64::new();
    let mut g = c.benchmark_group("read_validation");
    for &vlen in &[32usize, 512, 4096, 65536] {
        let key = [0x11u8; 16];
        let value = vec![0x22u8; vlen];

        // Guardian path: fetch blob + O(1) validation.
        let mut arena = Arena::new((vlen / 8 + 64) * 2);
        let off = arena.alloc(hydra_store::item_words(16, vlen)).unwrap();
        let item = ItemRef::write_new(arena.words(), off, &key, &value);
        let blob: Vec<u8> = {
            let len = item.read_len(arena.words()) as usize;
            let mut b = Vec::with_capacity(len);
            for w in 0..len / 8 {
                b.extend_from_slice(
                    &arena.words()[off as usize + w]
                        .load(std::sync::atomic::Ordering::Relaxed)
                        .to_le_bytes(),
                );
            }
            b
        };
        g.bench_function(BenchmarkId::new("guardian", vlen), |b| {
            b.iter(|| black_box(FetchedItem::parse(&blob, &key).unwrap().value.len()))
        });

        // Checksum path: recompute CRC over the whole item.
        let citem = ChecksumItem::build(&crc, &key, &value);
        g.bench_function(BenchmarkId::new("checksum", vlen), |b| {
            b.iter(|| match ChecksumItem::verify(&crc, citem.bytes()) {
                ChecksumVerdict::Valid(v) => black_box(v.len()),
                other => panic!("{other:?}"),
            })
        });
    }
    g.finish();
}

fn bench_write_side(c: &mut Criterion) {
    let crc = Crc64::new();
    let mut g = c.benchmark_group("write_side_cost");
    for &vlen in &[32usize, 4096] {
        let key = [0x11u8; 16];
        let value = vec![0x22u8; vlen];
        let mut arena = Arena::new((vlen / 8 + 64) * 2);
        let off = arena.alloc(hydra_store::item_words(16, vlen)).unwrap();
        g.bench_function(BenchmarkId::new("guardian_item_write", vlen), |b| {
            b.iter(|| black_box(ItemRef::write_new(arena.words(), off, &key, &value).off))
        });
        g.bench_function(BenchmarkId::new("checksum_item_build", vlen), |b| {
            b.iter(|| black_box(ChecksumItem::build(&crc, &key, &value).bytes().len()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_validation, bench_write_side);
criterion_main!(benches);
