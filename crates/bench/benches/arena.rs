//! Arena allocation and item read/write costs (the per-op memory work a
//! shard core performs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydra_store::{Arena, ItemRef};

fn bench_alloc_free(c: &mut Criterion) {
    let mut g = c.benchmark_group("arena");
    g.bench_function("alloc_free_exact_fit", |b| {
        let mut a = Arena::new(1 << 16);
        b.iter(|| {
            let off = a.alloc(9).expect("fits");
            a.free(off, 9);
            black_box(off)
        })
    });
    g.bench_function("item_write_16k_32v", |b| {
        let mut a = Arena::new(1 << 16);
        let off = a.alloc(9).unwrap();
        let key = [0x11u8; 16];
        let value = [0x22u8; 32];
        b.iter(|| {
            let item = ItemRef::write_new(a.words(), off, &key, &value);
            black_box(item.off)
        })
    });
    g.bench_function("item_value_read", |b| {
        let mut a = Arena::new(1 << 16);
        let off = a.alloc(9).unwrap();
        let item = ItemRef::write_new(a.words(), off, &[0x11; 16], &[0x22; 32]);
        b.iter(|| black_box(item.value(a.words()).len()))
    });
    g.bench_function("item_key_eq", |b| {
        let mut a = Arena::new(1 << 16);
        let off = a.alloc(9).unwrap();
        let item = ItemRef::write_new(a.words(), off, &[0x11; 16], &[0x22; 32]);
        b.iter(|| black_box(item.key_eq(a.words(), &[0x11; 16])))
    });
    g.finish();
}

criterion_group!(benches, bench_alloc_free);
criterion_main!(benches);
