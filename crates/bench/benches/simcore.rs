//! Simulator kernel throughput: events/second bounds how large a cluster
//! experiment the harness can afford.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hydra_sim::{FifoResource, Histogram, Sim};

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(20);
    g.bench_function("schedule_run_10k_events", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            for i in 0..10_000u64 {
                sim.schedule_at(i, |_| {});
            }
            sim.run();
            black_box(sim.executed_events())
        })
    });
    g.bench_function("chained_events_10k", |b| {
        b.iter(|| {
            let mut sim = Sim::new(1);
            fn chain(sim: &mut Sim, left: u32) {
                if left > 0 {
                    sim.schedule_in(5, move |sim| chain(sim, left - 1));
                }
            }
            chain(&mut sim, 10_000);
            sim.run();
            black_box(sim.now())
        })
    });
    g.bench_function("fifo_acquire", |b| {
        let mut r = FifoResource::new("bench");
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(r.acquire(t, 7))
        })
    });
    g.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v >> 40);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
