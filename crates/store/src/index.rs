//! The sealed [`Index`] abstraction over the shard's hash structures.
//!
//! Four implementations exist, selected per shard by
//! [`IndexKind`] in the engine configuration:
//!
//! * [`crate::PackedTable`] — the production structure: cache-line-packed
//!   open addressing with SWAR tag probing and incremental resize.
//! * [`crate::CompactTable`] — the seed's overflow-chained compact table
//!   (one line per bucket, 16-bit signatures, dynamic overflow chains).
//! * [`crate::ChainedTable`] — the naive linked-list baseline the paper's
//!   §4.1.3 ablation contrasts against.
//! * [`crate::HybridTable`] — the packed table paired with a cache-line
//!   skiplist so ordered scans are possible; point ops are the packed path
//!   unchanged. Requires the `*_keyed` mutation hooks (it must see key
//!   bytes to maintain the ordered view).
//!
//! The trait is *sealed*: the engine's correctness (address stability of
//! arena offsets, single-writer discipline, the rehash-callback contract)
//! is proven against exactly these implementations, so external crates may
//! consume the trait but not implement it. The engine itself stores an
//! [`AnyIndex`] — enum dispatch, so the hot probe loop stays monomorphic
//! and `ShardEngine` stays non-generic.
//!
//! Contract notes shared by all implementations:
//!
//! * Indexes map 64-bit key hashes to 48-bit arena word offsets and never
//!   look at key bytes themselves — full equality is the caller's
//!   `is_match(offset)` predicate.
//! * Mutating operations accept a `rehash(offset) -> hash` callback used by
//!   implementations that relocate entries (the packed table's incremental
//!   resize re-derives the home group of migrated entries from their stored
//!   keys). Implementations that never relocate ignore it. The callback may
//!   only be invoked for offsets currently present in the index, which the
//!   engine guarantees always reference live, un-reclaimed items.
//! * Index entries move; items never do. Arena offsets handed out as remote
//!   pointers stay valid across any index churn (see `hydra_wire`'s
//!   remote-pointer rules).

use crate::table::TableStats;
use crate::{ChainedTable, CompactTable, HybridTable, PackedTable};

mod private {
    /// Seals [`super::Index`]: only this crate's index structures implement
    /// it, so the engine's invariants cannot be broken from outside.
    pub trait Sealed {}

    impl Sealed for crate::CompactTable {}
    impl Sealed for crate::ChainedTable {}
    impl Sealed for crate::PackedTable {}
    impl Sealed for crate::HybridTable {}
    impl Sealed for super::AnyIndex {}
}

/// Which index structure a shard uses (the `abl_hashtable` A/B axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// Naive linked-list chaining (the ablation baseline).
    Chained,
    /// The seed's compact table: cache-line buckets + overflow chains.
    Compact,
    /// Cache-line-packed open addressing with SWAR probing (production).
    #[default]
    Packed,
    /// Packed table + ordered skiplist: point ops on the SWAR hash path,
    /// range scans on the ordered side (§11).
    Hybrid,
}

/// Common interface of the shard index structures. Sealed — see the module
/// docs for the contract.
pub trait Index: private::Sealed {
    /// Number of entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics snapshot.
    fn stats(&self) -> TableStats;

    /// Resets statistics (e.g. after warm-up).
    fn reset_stats(&mut self);

    /// Bytes held by the index's live structures.
    fn mem_bytes(&self) -> usize;

    /// Looks up the entry whose probe metadata matches `hash` and for which
    /// `is_match(offset)` confirms full key equality.
    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64>;

    /// Batched lookup: results and charged statistics identical to per-key
    /// [`lookup`](Self::lookup) calls in key order; implementations may
    /// reorder memory accesses (prefetch/interleave) across the batch. At
    /// most [`crate::LOOKUP_BATCH`] keys per call.
    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    );

    /// Inserts `(hash, offset)`; the caller guarantees the key is absent.
    fn insert(&mut self, hash: u64, offset: u64, rehash: impl FnMut(u64) -> u64);

    /// Replaces the offset of an existing entry (out-of-place update).
    /// Returns the old offset.
    fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64>;

    /// Removes the entry confirmed by `is_match`; returns its offset.
    fn remove(
        &mut self,
        hash: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64>;

    /// Refreshes inline per-entry metadata (lease class) after the engine
    /// granted or renewed a lease. No-op for structures without inline
    /// metadata.
    fn touch(&mut self, _hash: u64, _offset: u64, _lease_class: u8) {}

    /// Visits every stored offset.
    fn for_each(&self, f: impl FnMut(u64));

    /// Whether an incremental resize is in progress.
    fn is_resizing(&self) -> bool {
        false
    }

    /// Bytes parked on the retire list awaiting epoch reclamation.
    fn retired_bytes(&self) -> usize {
        0
    }

    /// Frees retired structures; returns how many were reclaimed. Driven
    /// from the engine's reclamation pump (put *and* delete paths).
    fn reclaim_retired(&mut self) -> usize {
        0
    }

    /// Whether this index also maintains an ordered view of the keys (and
    /// therefore supports [`scan_from`](Self::scan_from) natively).
    fn is_ordered(&self) -> bool {
        false
    }

    /// Keyed insert: like [`insert`](Self::insert), but the key bytes are
    /// available for implementations that maintain an ordered view. The
    /// engine always mutates through the keyed hooks; hash-only structures
    /// ignore the key via these defaults.
    fn insert_keyed(
        &mut self,
        hash: u64,
        _key: &[u8],
        offset: u64,
        rehash: impl FnMut(u64) -> u64,
    ) {
        self.insert(hash, offset, rehash)
    }

    /// Keyed variant of [`replace`](Self::replace).
    fn replace_keyed(
        &mut self,
        hash: u64,
        _key: &[u8],
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        self.replace(hash, new_offset, is_match, rehash)
    }

    /// Keyed variant of [`remove`](Self::remove).
    fn remove_keyed(
        &mut self,
        hash: u64,
        _key: &[u8],
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        self.remove(hash, is_match, rehash)
    }

    /// Ordered iteration from the first key `>= start`: `f` receives each
    /// `(key, offset)` in key order and returns `false` to stop. Returns
    /// `true` when the iteration ran off the end of the keyspace. Only
    /// meaningful when [`is_ordered`](Self::is_ordered); the default visits
    /// nothing and reports exhaustion (callers emulate scans by sorting a
    /// full dump — see `ShardEngine::scan_into`).
    fn scan_from(&mut self, _start: &[u8], _f: impl FnMut(&[u8], u64) -> bool) -> bool {
        true
    }
}

impl Index for CompactTable {
    fn len(&self) -> usize {
        CompactTable::len(self)
    }

    fn stats(&self) -> TableStats {
        CompactTable::stats(self)
    }

    fn reset_stats(&mut self) {
        CompactTable::reset_stats(self)
    }

    fn mem_bytes(&self) -> usize {
        CompactTable::mem_bytes(self)
    }

    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        CompactTable::lookup(self, hash, is_match)
    }

    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    ) {
        CompactTable::lookup_batch(self, hashes, out, is_match)
    }

    fn insert(&mut self, hash: u64, offset: u64, _rehash: impl FnMut(u64) -> u64) {
        CompactTable::insert(self, hash, offset)
    }

    fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        CompactTable::replace(self, hash, new_offset, is_match)
    }

    fn remove(
        &mut self,
        hash: u64,
        is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        CompactTable::remove(self, hash, is_match)
    }

    fn for_each(&self, f: impl FnMut(u64)) {
        CompactTable::for_each(self, f)
    }
}

impl Index for ChainedTable {
    fn len(&self) -> usize {
        ChainedTable::len(self)
    }

    fn stats(&self) -> TableStats {
        ChainedTable::stats(self)
    }

    fn reset_stats(&mut self) {
        ChainedTable::reset_stats(self)
    }

    fn mem_bytes(&self) -> usize {
        ChainedTable::mem_bytes(self)
    }

    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        ChainedTable::lookup(self, hash, is_match)
    }

    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    ) {
        ChainedTable::lookup_batch(self, hashes, out, is_match)
    }

    fn insert(&mut self, hash: u64, offset: u64, _rehash: impl FnMut(u64) -> u64) {
        ChainedTable::insert(self, hash, offset)
    }

    fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        ChainedTable::replace(self, hash, new_offset, is_match)
    }

    fn remove(
        &mut self,
        hash: u64,
        is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        ChainedTable::remove(self, hash, is_match)
    }

    fn for_each(&self, f: impl FnMut(u64)) {
        ChainedTable::for_each(self, f)
    }
}

impl Index for PackedTable {
    fn len(&self) -> usize {
        PackedTable::len(self)
    }

    fn stats(&self) -> TableStats {
        PackedTable::stats(self)
    }

    fn reset_stats(&mut self) {
        PackedTable::reset_stats(self)
    }

    fn mem_bytes(&self) -> usize {
        PackedTable::mem_bytes(self)
    }

    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        PackedTable::lookup(self, hash, is_match)
    }

    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    ) {
        PackedTable::lookup_batch(self, hashes, out, is_match)
    }

    fn insert(&mut self, hash: u64, offset: u64, rehash: impl FnMut(u64) -> u64) {
        PackedTable::insert(self, hash, offset, rehash)
    }

    fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        PackedTable::replace(self, hash, new_offset, is_match, rehash)
    }

    fn remove(
        &mut self,
        hash: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        PackedTable::remove(self, hash, is_match, rehash)
    }

    fn touch(&mut self, hash: u64, offset: u64, lease_class: u8) {
        PackedTable::touch(self, hash, offset, lease_class)
    }

    fn for_each(&self, f: impl FnMut(u64)) {
        PackedTable::for_each(self, f)
    }

    fn is_resizing(&self) -> bool {
        PackedTable::is_resizing(self)
    }

    fn retired_bytes(&self) -> usize {
        PackedTable::retired_bytes(self)
    }

    fn reclaim_retired(&mut self) -> usize {
        PackedTable::reclaim_retired(self)
    }
}

/// Enum dispatch over the index structures — the engine stores this so the
/// shard type stays non-generic while each arm's probe loop monomorphizes.
pub enum AnyIndex {
    /// Linked-list chaining.
    Chained(ChainedTable),
    /// Compact table with overflow chains.
    Compact(CompactTable),
    /// Cache-line-packed open addressing.
    Packed(PackedTable),
    /// Packed table + ordered skiplist.
    Hybrid(HybridTable),
}

impl AnyIndex {
    /// Builds the index of `kind` sized for `items` entries.
    pub fn with_capacity(kind: IndexKind, items: usize) -> AnyIndex {
        match kind {
            // One chain head per expected item — the conventional load
            // factor the naive designs the paper argues against would run.
            IndexKind::Chained => AnyIndex::Chained(ChainedTable::new(items.max(1))),
            IndexKind::Compact => AnyIndex::Compact(CompactTable::with_capacity(items)),
            IndexKind::Packed => AnyIndex::Packed(PackedTable::with_capacity(items)),
            IndexKind::Hybrid => AnyIndex::Hybrid(HybridTable::with_capacity(items)),
        }
    }

    /// Which kind this index is.
    pub fn kind(&self) -> IndexKind {
        match self {
            AnyIndex::Chained(_) => IndexKind::Chained,
            AnyIndex::Compact(_) => IndexKind::Compact,
            AnyIndex::Packed(_) => IndexKind::Packed,
            AnyIndex::Hybrid(_) => IndexKind::Hybrid,
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $t:ident => $body:expr) => {
        match $self {
            AnyIndex::Chained($t) => $body,
            AnyIndex::Compact($t) => $body,
            AnyIndex::Packed($t) => $body,
            AnyIndex::Hybrid($t) => $body,
        }
    };
}

impl Index for AnyIndex {
    fn len(&self) -> usize {
        dispatch!(self, t => Index::len(t))
    }

    fn stats(&self) -> TableStats {
        dispatch!(self, t => Index::stats(t))
    }

    fn reset_stats(&mut self) {
        dispatch!(self, t => Index::reset_stats(t))
    }

    fn mem_bytes(&self) -> usize {
        dispatch!(self, t => Index::mem_bytes(t))
    }

    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        dispatch!(self, t => Index::lookup(t, hash, is_match))
    }

    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    ) {
        dispatch!(self, t => Index::lookup_batch(t, hashes, out, is_match))
    }

    fn insert(&mut self, hash: u64, offset: u64, rehash: impl FnMut(u64) -> u64) {
        dispatch!(self, t => Index::insert(t, hash, offset, rehash))
    }

    fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        dispatch!(self, t => Index::replace(t, hash, new_offset, is_match, rehash))
    }

    fn remove(
        &mut self,
        hash: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        dispatch!(self, t => Index::remove(t, hash, is_match, rehash))
    }

    fn touch(&mut self, hash: u64, offset: u64, lease_class: u8) {
        dispatch!(self, t => Index::touch(t, hash, offset, lease_class))
    }

    fn for_each(&self, f: impl FnMut(u64)) {
        dispatch!(self, t => Index::for_each(t, f))
    }

    fn is_resizing(&self) -> bool {
        dispatch!(self, t => Index::is_resizing(t))
    }

    fn retired_bytes(&self) -> usize {
        dispatch!(self, t => Index::retired_bytes(t))
    }

    fn reclaim_retired(&mut self) -> usize {
        dispatch!(self, t => Index::reclaim_retired(t))
    }

    fn is_ordered(&self) -> bool {
        dispatch!(self, t => Index::is_ordered(t))
    }

    fn insert_keyed(&mut self, hash: u64, key: &[u8], offset: u64, rehash: impl FnMut(u64) -> u64) {
        dispatch!(self, t => Index::insert_keyed(t, hash, key, offset, rehash))
    }

    fn replace_keyed(
        &mut self,
        hash: u64,
        key: &[u8],
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        dispatch!(self, t => Index::replace_keyed(t, hash, key, new_offset, is_match, rehash))
    }

    fn remove_keyed(
        &mut self,
        hash: u64,
        key: &[u8],
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        dispatch!(self, t => Index::remove_keyed(t, hash, key, is_match, rehash))
    }

    fn scan_from(&mut self, start: &[u8], f: impl FnMut(&[u8], u64) -> bool) -> bool {
        dispatch!(self, t => Index::scan_from(t, start, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_key;
    use std::collections::HashMap;

    /// Generic exercise of the [`Index`] surface — runs identically over all
    /// three structures through both static and enum dispatch.
    fn exercise(idx: &mut impl Index) {
        let mut by_off: HashMap<u64, Vec<u8>> = HashMap::new();
        for i in 0..400u64 {
            let k = format!("ix-{i}").into_bytes();
            by_off.insert(i + 1, k.clone());
            let snapshot = by_off.clone();
            idx.insert(hash_key(&k), i + 1, move |o| hash_key(&snapshot[&o]));
        }
        assert_eq!(idx.len(), 400);
        assert!(!idx.is_empty());
        for i in (0..400).step_by(3) {
            let k = format!("ix-{i}").into_bytes();
            let snapshot = by_off.clone();
            let got = idx.lookup(hash_key(&k), |o| snapshot.get(&o).is_some_and(|s| s == &k));
            assert!(got.is_some(), "missing ix-{i}");
        }
        let mut seen = 0usize;
        idx.for_each(|_| seen += 1);
        assert_eq!(seen, 400);
        for i in (0..400).step_by(2) {
            let k = format!("ix-{i}").into_bytes();
            let snap = by_off.clone();
            let removed = idx.remove(
                hash_key(&k),
                |o| snap.get(&o).is_some_and(|s| s == &k),
                |o| hash_key(&snap[&o]),
            );
            let off = removed.expect("present");
            by_off.remove(&off);
        }
        assert_eq!(idx.len(), 200);
        assert!(idx.mem_bytes() > 0);
        assert!(idx.stats().lookups > 0);
        idx.reset_stats();
        assert_eq!(idx.stats().lookups, 0);
    }

    #[test]
    fn all_kinds_pass_the_generic_exercise() {
        for kind in [IndexKind::Chained, IndexKind::Compact, IndexKind::Packed] {
            let mut idx = AnyIndex::with_capacity(kind, 256);
            assert_eq!(idx.kind(), kind);
            exercise(&mut idx);
        }
        exercise(&mut ChainedTable::new(64));
        exercise(&mut CompactTable::new(64));
        exercise(&mut PackedTable::new(64));
    }

    #[test]
    fn default_kind_is_packed() {
        assert_eq!(IndexKind::default(), IndexKind::Packed);
    }
}
