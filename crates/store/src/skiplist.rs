//! Cache-line-conscious skiplist and the hybrid ordered/hash index (§11).
//!
//! HydraDB's packed hash table answers point ops in one SWAR probe but cannot
//! enumerate keys in order, so range scans would need a full-keyspace sort.
//! [`SkipList`] adds the ordered dimension: every tower is exactly one
//! 64-byte-aligned cache line (`[`Tower`]`, statically asserted), keys are
//! interned into a chain of size-classed [`Arena`] slabs rather than boxed
//! per-node, and unlinked towers are parked on a retired list that is drained
//! by the same epoch pump that recycles `PackedTable` tables — the single
//! writer unlinks, readers of a stale snapshot finish their walk, reclaim
//! frees.
//!
//! [`HybridTable`] pairs the skiplist with a [`PackedTable`]: point lookups
//! keep hitting the SWAR hash path untouched, while the keyed mutation hooks
//! ([`Index::insert_keyed`] and friends) maintain the ordered view alongside.
//! Ordered iteration ([`Index::scan_from`]) walks level 0 of the skiplist,
//! presenting each interned key through a reused scratch buffer so steady-state
//! scans allocate nothing.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::Ordering;

use crate::arena::{size_class, Arena};
use crate::index::Index;
use crate::packed::PackedTable;
use crate::table::TableStats;

/// Maximum tower height. With p = 1/4 this comfortably indexes 4^12 ≈ 16M
/// items per shard — far above any per-shard sizing in the repo.
pub const SKIP_MAX_HEIGHT: usize = 12;

/// Null link.
const NIL: u32 = u32::MAX;

/// Initial key-slab capacity in words; slabs double up to [`MAX_SLAB_WORDS`].
const MIN_SLAB_WORDS: u32 = 1 << 10;
/// Largest single slab (2^22 words = 32 MiB); also bounds the offset field of
/// the packed `key_off` encoding (slab index in the top 8 bits).
const MAX_SLAB_WORDS: u32 = 1 << 22;
const SLAB_OFF_BITS: u32 = 24;
const SLAB_OFF_MASK: u32 = (1 << SLAB_OFF_BITS) - 1;

/// One skiplist node: exactly one aligned cache line, so a level-0 walk
/// touches one line per item and tall-tower traversal never splits a node
/// across lines. Layout (64 B): key ref (4+2), height+pad (2), value offset
/// (8), and the full 12-level link array (48).
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct Tower {
    /// Packed interned-key reference: `slab_idx << 24 | word_offset`.
    key_off: u32,
    /// Key length in bytes.
    key_len: u16,
    /// Number of live levels in `next` (1..=SKIP_MAX_HEIGHT).
    height: u8,
    _pad: u8,
    /// Arena word offset of the indexed item.
    val_off: u64,
    /// Forward links; `NIL` terminates a level.
    next: [u32; SKIP_MAX_HEIGHT],
}

const _: () = assert!(std::mem::size_of::<Tower>() == 64);
const _: () = assert!(std::mem::align_of::<Tower>() == 64);

impl Tower {
    fn empty() -> Tower {
        Tower {
            key_off: 0,
            key_len: 0,
            height: SKIP_MAX_HEIGHT as u8,
            _pad: 0,
            val_off: 0,
            next: [NIL; SKIP_MAX_HEIGHT],
        }
    }
}

/// Statistics for the ordered side of the hybrid index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipListStats {
    /// Live entries.
    pub len: u64,
    /// Towers parked on the retired list awaiting reclaim.
    pub retired_nodes: u64,
    /// Key-slab segments allocated so far.
    pub slabs: u64,
    /// Total comparisons performed by `find`/`scan` walks.
    pub cmps: u64,
}

/// Single-writer skiplist over interned byte keys, mapping each key to an
/// arena word offset. See the module docs for the design.
pub struct SkipList {
    towers: Vec<Tower>,
    /// Recycled tower indices (from reclaimed removals).
    free: Vec<u32>,
    /// Unlinked towers whose key bytes are still interned; drained by
    /// [`reclaim_retired`](Self::reclaim_retired).
    retired: Vec<u32>,
    retired_bytes: usize,
    /// Size-classed key slabs; geometrically grown, never shrunk.
    slabs: Vec<Arena>,
    len: u64,
    cmps: u64,
    /// Scan-key presentation buffer, reused across scans (zero-alloc
    /// steady state).
    scan_key_buf: Vec<u8>,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Creates an empty skiplist (head sentinel only; no key slab yet).
    pub fn new() -> SkipList {
        SkipList {
            towers: vec![Tower::empty()],
            free: Vec::new(),
            retired: Vec::new(),
            retired_bytes: 0,
            slabs: Vec::new(),
            len: 0,
            cmps: 0,
            scan_key_buf: Vec::new(),
        }
    }

    /// Creates a skiplist with tower storage pre-reserved for `items`.
    pub fn with_capacity(items: usize) -> SkipList {
        let mut s = SkipList::new();
        s.towers.reserve(items);
        s
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deterministic tower height: count trailing zero bit-pairs of a remix
    /// of the key hash (p = 1/4 per extra level). Independent of insertion
    /// order, so twin engines fed identical ops build identical towers.
    fn height_for(hash: u64) -> u8 {
        let mut x = hash.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        let mut h = 1u8;
        while (h as usize) < SKIP_MAX_HEIGHT && x & 3 == 0 {
            h += 1;
            x >>= 2;
        }
        h
    }

    // ---- key interning ------------------------------------------------

    /// Interns `key` into the slab chain, growing it if every slab is full.
    fn intern_key(&mut self, key: &[u8]) -> u32 {
        let words = key.len().div_ceil(8).max(1) as u32;
        if let Some((idx, off)) = self.try_alloc_key(words) {
            self.store_key(idx, off, key);
            return pack_key_off(idx, off);
        }
        // Grow: next slab doubles the last one's capacity (clamped), and is
        // always big enough for the request.
        let next_cap = self
            .slabs
            .last()
            .map(|s| (s.capacity_words() as u32).saturating_mul(2))
            .unwrap_or(MIN_SLAB_WORDS)
            .clamp(MIN_SLAB_WORDS, MAX_SLAB_WORDS)
            .max(size_class(words));
        assert!(
            self.slabs.len() < (1 << (32 - SLAB_OFF_BITS)),
            "skiplist key-slab chain exhausted"
        );
        self.slabs.push(Arena::new(next_cap as usize));
        let idx = self.slabs.len() - 1;
        let off = self.slabs[idx]
            .alloc(words)
            .expect("fresh slab sized for request");
        self.store_key(idx, off as u32, key);
        pack_key_off(idx, off as u32)
    }

    /// Tries the newest slab first (older ones are usually full), then any
    /// older slab whose free lists can still serve the class.
    fn try_alloc_key(&mut self, words: u32) -> Option<(usize, u32)> {
        for idx in (0..self.slabs.len()).rev() {
            if let Some(off) = self.slabs[idx].alloc(words) {
                return Some((idx, off as u32));
            }
        }
        None
    }

    fn store_key(&mut self, slab: usize, off: u32, key: &[u8]) {
        debug_assert!(off <= SLAB_OFF_MASK);
        let words = self.slabs[slab].words();
        for (i, chunk) in key.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            words[off as usize + i].store(u64::from_le_bytes(w), Ordering::Relaxed);
        }
    }

    fn free_key(&mut self, key_off: u32, key_len: u16) {
        let (slab, off) = unpack_key_off(key_off);
        let words = (key_len as usize).div_ceil(8).max(1) as u32;
        self.slabs[slab].free(off as u64, words);
    }

    /// Lexicographic comparison of an interned key against `probe`, loading
    /// slab words lazily (no staging buffer, no allocation).
    fn cmp_key(&self, key_off: u32, key_len: u16, probe: &[u8]) -> CmpOrdering {
        let (slab, off) = unpack_key_off(key_off);
        let words = self.slabs[slab].words();
        let klen = key_len as usize;
        let n = klen.min(probe.len());
        let mut i = 0;
        while i < n {
            let w = words[off as usize + i / 8]
                .load(Ordering::Relaxed)
                .to_le_bytes();
            let end = (i / 8 * 8 + 8).min(n);
            while i < end {
                let (a, b) = (w[i % 8], probe[i]);
                if a != b {
                    return a.cmp(&b);
                }
                i += 1;
            }
        }
        klen.cmp(&probe.len())
    }

    /// Copies an interned key into `out` (clears it first). Reuses `out`'s
    /// capacity — no allocation once warmed past the largest key.
    fn load_key_into(&self, key_off: u32, key_len: u16, out: &mut Vec<u8>) {
        let (slab, off) = unpack_key_off(key_off);
        let words = self.slabs[slab].words();
        out.clear();
        let mut remaining = key_len as usize;
        let mut w = off as usize;
        while remaining > 0 {
            let bytes = words[w].load(Ordering::Relaxed).to_le_bytes();
            let take = remaining.min(8);
            out.extend_from_slice(&bytes[..take]);
            remaining -= take;
            w += 1;
        }
    }

    // ---- core walks ---------------------------------------------------

    /// Walks down from the head, recording the rightmost tower strictly less
    /// than `key` at every level. Returns the level-0 successor (the first
    /// tower `>= key`, or `NIL`).
    fn find_preds(&mut self, key: &[u8], update: &mut [u32; SKIP_MAX_HEIGHT]) -> u32 {
        let mut x = 0u32;
        for lvl in (0..SKIP_MAX_HEIGHT).rev() {
            loop {
                let nxt = self.towers[x as usize].next[lvl];
                if nxt == NIL {
                    break;
                }
                let t = self.towers[nxt as usize];
                self.cmps += 1;
                if self.cmp_key(t.key_off, t.key_len, key) == CmpOrdering::Less {
                    x = nxt;
                } else {
                    break;
                }
            }
            update[lvl] = x;
        }
        self.towers[x as usize].next[0]
    }

    /// Point lookup (used by tests and the ordered-only paths; the hybrid
    /// index answers point ops through the hash side).
    pub fn get(&mut self, key: &[u8]) -> Option<u64> {
        let mut update = [0u32; SKIP_MAX_HEIGHT];
        let cand = self.find_preds(key, &mut update);
        if cand != NIL {
            let t = self.towers[cand as usize];
            if self.cmp_key(t.key_off, t.key_len, key) == CmpOrdering::Equal {
                return Some(t.val_off);
            }
        }
        None
    }

    /// Inserts `key → val_off`, or replaces the value offset when the key is
    /// already present. Returns the previous offset, if any. `hash` is the
    /// key's FNV hash (drives the deterministic tower height).
    pub fn upsert(&mut self, key: &[u8], hash: u64, val_off: u64) -> Option<u64> {
        let mut update = [0u32; SKIP_MAX_HEIGHT];
        let cand = self.find_preds(key, &mut update);
        if cand != NIL {
            let t = self.towers[cand as usize];
            if self.cmp_key(t.key_off, t.key_len, key) == CmpOrdering::Equal {
                let old = t.val_off;
                self.towers[cand as usize].val_off = val_off;
                return Some(old);
            }
        }
        let height = Self::height_for(hash);
        let key_off = self.intern_key(key);
        let node = self.alloc_tower();
        {
            let t = &mut self.towers[node as usize];
            t.key_off = key_off;
            t.key_len = key.len() as u16;
            t.height = height;
            t.val_off = val_off;
            t.next = [NIL; SKIP_MAX_HEIGHT];
        }
        for (lvl, &pred) in update.iter().enumerate().take(height as usize) {
            self.towers[node as usize].next[lvl] = self.towers[pred as usize].next[lvl];
            self.towers[pred as usize].next[lvl] = node;
        }
        self.len += 1;
        None
    }

    /// Replaces the value offset of an existing key. Returns the old offset,
    /// or `None` when absent (no structural change either way).
    pub fn set(&mut self, key: &[u8], new_off: u64) -> Option<u64> {
        let mut update = [0u32; SKIP_MAX_HEIGHT];
        let cand = self.find_preds(key, &mut update);
        if cand != NIL {
            let t = self.towers[cand as usize];
            if self.cmp_key(t.key_off, t.key_len, key) == CmpOrdering::Equal {
                let old = t.val_off;
                self.towers[cand as usize].val_off = new_off;
                return Some(old);
            }
        }
        None
    }

    /// Unlinks `key` and parks its tower on the retired list (key bytes stay
    /// interned until [`reclaim_retired`](Self::reclaim_retired)). Returns
    /// the removed value offset.
    pub fn remove(&mut self, key: &[u8]) -> Option<u64> {
        let mut update = [0u32; SKIP_MAX_HEIGHT];
        let cand = self.find_preds(key, &mut update);
        if cand == NIL {
            return None;
        }
        let t = self.towers[cand as usize];
        if self.cmp_key(t.key_off, t.key_len, key) != CmpOrdering::Equal {
            return None;
        }
        for (lvl, &pred) in update.iter().enumerate().take(t.height as usize) {
            if self.towers[pred as usize].next[lvl] == cand {
                self.towers[pred as usize].next[lvl] = t.next[lvl];
            }
        }
        self.len -= 1;
        self.retired.push(cand);
        self.retired_bytes += Self::tower_footprint(t.key_len);
        Some(t.val_off)
    }

    fn tower_footprint(key_len: u16) -> usize {
        let key_words = (key_len as usize).div_ceil(8).max(1) as u32;
        64 + size_class(key_words) as usize * 8
    }

    fn alloc_tower(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            return idx;
        }
        let idx = self.towers.len() as u32;
        assert!(idx < NIL, "skiplist tower space exhausted");
        self.towers.push(Tower::empty());
        idx
    }

    /// Bytes parked on the retired list (towers + interned keys).
    #[inline]
    pub fn retired_bytes(&self) -> usize {
        self.retired_bytes
    }

    /// Frees the interned keys of retired towers and recycles the towers.
    /// Returns the number of towers reclaimed.
    pub fn reclaim_retired(&mut self) -> usize {
        let n = self.retired.len();
        while let Some(idx) = self.retired.pop() {
            let t = self.towers[idx as usize];
            self.free_key(t.key_off, t.key_len);
            self.free.push(idx);
        }
        self.retired_bytes = 0;
        n
    }

    /// Resident bytes: tower storage plus key slabs.
    pub fn mem_bytes(&self) -> usize {
        let towers = self.towers.capacity() * 64;
        let slabs: u64 = self.slabs.iter().map(|s| s.capacity_words() * 8).sum();
        towers + slabs as usize
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> SkipListStats {
        SkipListStats {
            len: self.len,
            retired_nodes: self.retired.len() as u64,
            slabs: self.slabs.len() as u64,
            cmps: self.cmps,
        }
    }

    /// Ordered iteration from the first key `>= start`. `f` receives each
    /// `(key, value_offset)` and returns `false` to stop early. Returns
    /// `true` when the walk ran off the end of the list (nothing left to
    /// scan), `false` when `f` stopped it — the "more items remain" signal
    /// behind the wire continuation token.
    ///
    /// The key is presented through an internal scratch buffer that is
    /// reused across calls: after one warmup scan, this path allocates
    /// nothing.
    pub fn scan_from(&mut self, start: &[u8], mut f: impl FnMut(&[u8], u64) -> bool) -> bool {
        // Position: rightmost tower < start, then step to its successor.
        let mut x = 0u32;
        for lvl in (0..SKIP_MAX_HEIGHT).rev() {
            loop {
                let nxt = self.towers[x as usize].next[lvl];
                if nxt == NIL {
                    break;
                }
                let t = self.towers[nxt as usize];
                self.cmps += 1;
                if self.cmp_key(t.key_off, t.key_len, start) == CmpOrdering::Less {
                    x = nxt;
                } else {
                    break;
                }
            }
        }
        let mut cur = self.towers[x as usize].next[0];
        let mut scratch = std::mem::take(&mut self.scan_key_buf);
        let mut exhausted = true;
        while cur != NIL {
            let t = self.towers[cur as usize];
            self.load_key_into(t.key_off, t.key_len, &mut scratch);
            if !f(&scratch, t.val_off) {
                exhausted = false;
                break;
            }
            cur = t.next[0];
        }
        self.scan_key_buf = scratch;
        exhausted
    }
}

#[inline]
fn pack_key_off(slab: usize, off: u32) -> u32 {
    debug_assert!(off <= SLAB_OFF_MASK);
    ((slab as u32) << SLAB_OFF_BITS) | off
}

#[inline]
fn unpack_key_off(key_off: u32) -> (usize, u32) {
    ((key_off >> SLAB_OFF_BITS) as usize, key_off & SLAB_OFF_MASK)
}

/// The hybrid index: a [`PackedTable`] for point ops and a [`SkipList`] for
/// ordered ones, kept coherent through the keyed mutation hooks. Point-op
/// behavior (probing, SWAR, incremental resize, epoch reclaim of old tables)
/// is byte-for-byte the packed path; only mutations pay the skiplist
/// maintenance walk.
///
/// The plain (un-keyed) mutators panic: the hybrid index cannot maintain the
/// ordered view without key bytes, and a silent hash-only mutation would let
/// the two sides diverge. `ShardEngine` always uses the keyed hooks.
pub struct HybridTable {
    hash: PackedTable,
    ordered: SkipList,
}

impl HybridTable {
    /// Creates a hybrid index sized for `items`.
    pub fn with_capacity(items: usize) -> HybridTable {
        HybridTable {
            hash: PackedTable::with_capacity(items),
            ordered: SkipList::with_capacity(items),
        }
    }

    /// The ordered side, for direct inspection in tests.
    pub fn ordered(&mut self) -> &mut SkipList {
        &mut self.ordered
    }

    /// The hash side, for direct inspection in tests.
    pub fn hash(&self) -> &PackedTable {
        &self.hash
    }
}

impl Index for HybridTable {
    fn len(&self) -> usize {
        self.hash.len()
    }

    fn stats(&self) -> TableStats {
        self.hash.stats()
    }

    fn reset_stats(&mut self) {
        self.hash.reset_stats();
    }

    fn mem_bytes(&self) -> usize {
        self.hash.mem_bytes() + self.ordered.mem_bytes()
    }

    fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        self.hash.lookup(hash, is_match)
    }

    fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        is_match: impl FnMut(usize, u64) -> bool,
    ) {
        self.hash.lookup_batch(hashes, out, is_match)
    }

    fn insert(&mut self, _hash: u64, _offset: u64, _rehash: impl FnMut(u64) -> u64) {
        panic!("hybrid index requires keyed mutation (insert_keyed)");
    }

    fn replace(
        &mut self,
        _hash: u64,
        _new_offset: u64,
        _is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        panic!("hybrid index requires keyed mutation (replace_keyed)");
    }

    fn remove(
        &mut self,
        _hash: u64,
        _is_match: impl FnMut(u64) -> bool,
        _rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        panic!("hybrid index requires keyed mutation (remove_keyed)");
    }

    fn insert_keyed(&mut self, hash: u64, key: &[u8], offset: u64, rehash: impl FnMut(u64) -> u64) {
        self.hash.insert(hash, offset, rehash);
        self.ordered.upsert(key, hash, offset);
    }

    fn replace_keyed(
        &mut self,
        hash: u64,
        key: &[u8],
        new_offset: u64,
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        let old = self.hash.replace(hash, new_offset, is_match, rehash);
        if old.is_some() {
            self.ordered.set(key, new_offset);
        }
        old
    }

    fn remove_keyed(
        &mut self,
        hash: u64,
        key: &[u8],
        is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        let old = self.hash.remove(hash, is_match, rehash);
        if old.is_some() {
            self.ordered.remove(key);
        }
        old
    }

    fn touch(&mut self, hash: u64, offset: u64, lease_class: u8) {
        self.hash.touch(hash, offset, lease_class)
    }

    fn for_each(&self, f: impl FnMut(u64)) {
        self.hash.for_each(f)
    }

    fn is_resizing(&self) -> bool {
        self.hash.is_resizing()
    }

    fn retired_bytes(&self) -> usize {
        self.hash.retired_bytes() + self.ordered.retired_bytes()
    }

    fn reclaim_retired(&mut self) -> usize {
        self.hash.reclaim_retired() + self.ordered.reclaim_retired()
    }

    fn is_ordered(&self) -> bool {
        true
    }

    fn scan_from(&mut self, start: &[u8], f: impl FnMut(&[u8], u64) -> bool) -> bool {
        self.ordered.scan_from(start, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_key, IndexKind};
    use std::collections::BTreeMap;

    /// Pinned by scripts/check.sh: a tower is exactly one aligned cache line.
    #[test]
    fn skiplist_tower_layout_is_one_aligned_cache_line() {
        assert_eq!(std::mem::size_of::<Tower>(), 64);
        assert_eq!(std::mem::align_of::<Tower>(), 64);
        // 12 levels fit exactly: 4+2+1+1+8 header bytes + 12*4 link bytes.
        assert_eq!(8 + 8 + SKIP_MAX_HEIGHT * 4, 64);
    }

    fn dump(s: &mut SkipList) -> Vec<(Vec<u8>, u64)> {
        let mut out = Vec::new();
        s.scan_from(b"", |k, v| {
            out.push((k.to_vec(), v));
            true
        });
        out
    }

    #[test]
    fn ordered_iteration_matches_btreemap_model() {
        let mut s = SkipList::new();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        // Deterministic LCG-driven mixed workload.
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut step = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..4_000u64 {
            let k = format!("key-{:05}", step() % 700).into_bytes();
            let h = hash_key(&k);
            match step() % 10 {
                0..=5 => {
                    s.upsert(&k, h, i);
                    model.insert(k, i);
                }
                6..=7 => {
                    assert_eq!(s.remove(&k), model.remove(&k), "remove {i}");
                }
                8 => {
                    let expect = model.get(&k).copied();
                    if let Some(v) = expect {
                        assert_eq!(s.set(&k, v + 1), Some(v));
                        model.insert(k, v + 1);
                    } else {
                        assert_eq!(s.set(&k, 0), None);
                    }
                }
                _ => {
                    s.reclaim_retired();
                }
            }
            assert_eq!(s.len(), model.len() as u64);
        }
        let got = dump(&mut s);
        let want: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scan_from_starts_at_first_key_geq_start_and_reports_exhaustion() {
        let mut s = SkipList::new();
        for i in [10u64, 20, 30, 40] {
            let k = format!("k{i:03}").into_bytes();
            s.upsert(&k, hash_key(&k), i);
        }
        // Start between keys.
        let mut seen = Vec::new();
        let exhausted = s.scan_from(b"k015", |k, v| {
            seen.push((k.to_vec(), v));
            true
        });
        assert!(exhausted);
        assert_eq!(
            seen,
            vec![
                (b"k020".to_vec(), 20),
                (b"k030".to_vec(), 30),
                (b"k040".to_vec(), 40)
            ]
        );
        // Early stop => not exhausted.
        let mut n = 0;
        let exhausted = s.scan_from(b"", |_, _| {
            n += 1;
            n < 2
        });
        assert!(!exhausted);
        assert_eq!(n, 2);
        // Start past the end: exhausted, nothing visited.
        let exhausted = s.scan_from(b"zzz", |_, _| panic!("no items expected"));
        assert!(exhausted);
    }

    #[test]
    fn retired_towers_and_keys_are_recycled() {
        let mut s = SkipList::new();
        for i in 0..100u64 {
            let k = format!("rk{i:04}").into_bytes();
            s.upsert(&k, hash_key(&k), i);
        }
        let slabs_before = s.stats().slabs;
        for i in 0..100u64 {
            let k = format!("rk{i:04}").into_bytes();
            assert_eq!(s.remove(&k), Some(i));
        }
        assert!(s.retired_bytes() > 0);
        assert_eq!(s.reclaim_retired(), 100);
        assert_eq!(s.retired_bytes(), 0);
        // Re-insert: towers and key slab space come from the free lists,
        // no new slab growth.
        for i in 0..100u64 {
            let k = format!("rk{i:04}").into_bytes();
            s.upsert(&k, hash_key(&k), i);
        }
        assert_eq!(s.stats().slabs, slabs_before);
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn key_interning_grows_across_slabs() {
        let mut s = SkipList::new();
        // Big keys force multiple slab segments (MIN_SLAB_WORDS = 1024 words
        // = 8 KiB; 2000 × 64 B keys ≈ 128 KiB of key bytes).
        for i in 0..2_000u64 {
            let mut k = format!("grow-{i:06}").into_bytes();
            k.resize(64, b'x');
            s.upsert(&k, hash_key(&k), i);
        }
        assert!(s.stats().slabs > 1, "expected slab chain growth");
        assert_eq!(s.len(), 2_000);
        let items = dump(&mut s);
        assert_eq!(items.len(), 2_000);
        assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn hybrid_keeps_hash_and_ordered_sides_coherent() {
        let mut t = HybridTable::with_capacity(8);
        let keys: Vec<Vec<u8>> = (0..300)
            .map(|i| format!("hy-{i:04}").into_bytes())
            .collect();
        // Offsets are key indices here, so resize migration can re-derive
        // any entry's hash from its offset.
        let rehash = |o: u64| hash_key(&keys[o as usize]);
        for (i, k) in keys.iter().enumerate() {
            let h = hash_key(k);
            t.insert_keyed(h, k, i as u64, rehash);
        }
        assert_eq!(t.len(), 300);
        assert_eq!(t.ordered().len(), 300);
        // Point path agrees with ordered path.
        for (i, k) in keys.iter().enumerate() {
            let h = hash_key(k);
            assert_eq!(t.lookup(h, |off| off == i as u64), Some(i as u64));
            assert_eq!(t.ordered().get(k), Some(i as u64));
        }
        // Replace moves both sides. (Offset 9_999 stands in for a relocated
        // item and still hashes to keys[7] if migration rehashes it.)
        let h = hash_key(&keys[7]);
        let rehash2 = |o: u64| {
            if o == 9_999 {
                hash_key(&keys[7])
            } else {
                hash_key(&keys[o as usize])
            }
        };
        assert_eq!(
            t.replace_keyed(h, &keys[7], 9_999, |off| off == 7, rehash2),
            Some(7)
        );
        assert_eq!(t.ordered().get(&keys[7]), Some(9_999));
        // Remove drops both sides.
        assert_eq!(
            t.remove_keyed(h, &keys[7], |off| off == 9_999, rehash2),
            Some(9_999)
        );
        assert_eq!(t.len(), 299);
        assert_eq!(t.ordered().len(), 299);
        assert_eq!(t.ordered().get(&keys[7]), None);
        assert!(t.is_ordered());
        assert!(t.retired_bytes() > 0);
        t.reclaim_retired();
        assert_eq!(SkipList::new().retired_bytes(), 0);
    }

    #[test]
    fn hybrid_is_constructible_through_the_index_kind() {
        let mut any = crate::AnyIndex::with_capacity(IndexKind::Hybrid, 16);
        assert_eq!(any.kind(), IndexKind::Hybrid);
        assert!(any.is_ordered());
        let k = b"via-any".to_vec();
        let h = hash_key(&k);
        any.insert_keyed(h, &k, 42, |_| unreachable!());
        assert_eq!(any.lookup(h, |off| off == 42), Some(42));
        let mut seen = Vec::new();
        let exhausted = any.scan_from(b"", |key, off| {
            seen.push((key.to_vec(), off));
            true
        });
        assert!(exhausted);
        assert_eq!(seen, vec![(k, 42)]);
    }

    #[test]
    fn tower_heights_are_deterministic_and_bounded() {
        for i in 0..50_000u64 {
            let h = SkipList::height_for(i);
            assert!((1..=SKIP_MAX_HEIGHT as u8).contains(&h));
            assert_eq!(h, SkipList::height_for(i));
        }
        // Height distribution is roughly geometric with p = 1/4: about a
        // quarter of hashes should reach level 2.
        let tall = (0..50_000u64)
            .filter(|&i| SkipList::height_for(crate::avalanche(i)) >= 2)
            .count();
        assert!((8_000..17_000).contains(&tall), "tall towers: {tall}");
    }
}
