//! Baseline chained hash table for the §4.1.3 ablation.
//!
//! This is the "naive implementation ... that depends on linked lists to
//! resolve hash collisions" the paper contrasts against: every entry is a
//! separately boxed node, lookups chase pointers, and there is no signature
//! filter — each candidate requires a full key comparison. It exposes the
//! same stats as [`crate::CompactTable`] so the A-HASH benchmark can compare
//! pointer dereferences and comparison counts directly.

use crate::table::TableStats;

struct Node {
    hash: u64,
    offset: u64,
    next: Option<Box<Node>>,
}

/// Chained-list hash table mapping key hashes to arena offsets.
pub struct ChainedTable {
    heads: Box<[Option<Box<Node>>]>,
    mask: u64,
    len: usize,
    stats: TableStats,
}

impl ChainedTable {
    /// Creates a table with at least `buckets` chains (rounded to a power of
    /// two).
    pub fn new(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        let mut heads = Vec::with_capacity(n);
        heads.resize_with(n, || None);
        ChainedTable {
            heads: heads.into_boxed_slice(),
            mask: (n - 1) as u64,
            len: 0,
            stats: TableStats::default(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Statistics snapshot (`buckets_probed` counts node dereferences here).
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    /// Looks up the offset whose key `is_match` confirms.
    pub fn lookup(&mut self, hash: u64, mut is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        self.stats.lookups += 1;
        let mut cur = self.heads[(hash & self.mask) as usize].as_deref();
        while let Some(n) = cur {
            self.stats.buckets_probed += 1;
            if n.hash == hash {
                self.stats.full_compares += 1;
                if is_match(n.offset) {
                    return Some(n.offset);
                }
                self.stats.false_positives += 1;
            }
            cur = n.next.as_deref();
        }
        None
    }

    /// Inserts an entry (caller guarantees key absence).
    pub fn insert(&mut self, hash: u64, offset: u64) {
        let b = (hash & self.mask) as usize;
        let head = self.heads[b].take();
        self.heads[b] = Some(Box::new(Node {
            hash,
            offset,
            next: head,
        }));
        self.len += 1;
    }

    /// Replaces the offset for an existing entry; returns the old offset.
    pub fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        mut is_match: impl FnMut(u64) -> bool,
    ) -> Option<u64> {
        let mut cur = self.heads[(hash & self.mask) as usize].as_deref_mut();
        while let Some(n) = cur {
            if n.hash == hash && is_match(n.offset) {
                return Some(std::mem::replace(&mut n.offset, new_offset));
            }
            cur = n.next.as_deref_mut();
        }
        None
    }

    /// Batched lookup. The chained layout has no group line to prefetch —
    /// chains are pointer soup — so this is simply the scalar loop; it
    /// exists so the baseline drives the same engine batch path as the
    /// packed table in the A/B.
    pub fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        mut is_match: impl FnMut(usize, u64) -> bool,
    ) {
        assert!(
            hashes.len() <= crate::table::LOOKUP_BATCH,
            "batch exceeds LOOKUP_BATCH"
        );
        assert!(out.len() >= hashes.len(), "output buffer too small");
        for (i, &hash) in hashes.iter().enumerate() {
            out[i] = self.lookup(hash, |off| is_match(i, off));
        }
    }

    /// Visits every stored offset (diagnostics, migration, eviction scans).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for head in self.heads.iter() {
            let mut cur = head.as_deref();
            while let Some(n) = cur {
                f(n.offset);
                cur = n.next.as_deref();
            }
        }
    }

    /// Bytes held by the bucket array plus every boxed node.
    pub fn mem_bytes(&self) -> usize {
        self.heads.len() * std::mem::size_of::<Option<Box<Node>>>()
            + self.len * std::mem::size_of::<Node>()
    }

    /// Removes an entry; returns its offset.
    pub fn remove(&mut self, hash: u64, mut is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        let b = (hash & self.mask) as usize;
        let mut link = &mut self.heads[b];
        loop {
            match link {
                None => return None,
                Some(node) if node.hash == hash && is_match(node.offset) => {
                    let removed = link.take().expect("checked Some");
                    *link = removed.next;
                    self.len -= 1;
                    return Some(removed.offset);
                }
                Some(_) => {
                    link = &mut link.as_mut().expect("checked Some").next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_key;
    use std::collections::HashMap;

    #[test]
    fn basic_ops() {
        let mut t = ChainedTable::new(4);
        t.insert(hash_key(b"a"), 1);
        t.insert(hash_key(b"b"), 2);
        assert_eq!(t.lookup(hash_key(b"a"), |o| o == 1), Some(1));
        assert_eq!(t.lookup(hash_key(b"zz"), |_| true), None);
        assert_eq!(t.replace(hash_key(b"b"), 20, |o| o == 2), Some(2));
        assert_eq!(t.lookup(hash_key(b"b"), |o| o == 20), Some(20));
        assert_eq!(t.remove(hash_key(b"a"), |o| o == 1), Some(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_middle_of_chain() {
        let mut t = ChainedTable::new(1); // force one chain
        for i in 0..10u64 {
            t.insert(hash_key(format!("k{i}").as_bytes()), i);
        }
        assert_eq!(t.remove(hash_key(b"k5"), |o| o == 5), Some(5));
        for i in (0..10u64).filter(|&i| i != 5) {
            assert_eq!(
                t.lookup(hash_key(format!("k{i}").as_bytes()), |o| o == i),
                Some(i)
            );
        }
        assert_eq!(t.len(), 9);
    }

    #[test]
    fn randomized_against_std_hashmap() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let mut t = ChainedTable::new(4);
        let mut offs: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut next = 1u64;
        for _ in 0..10_000 {
            let k = format!("key-{}", rng.gen_range(0..300)).into_bytes();
            let h = hash_key(&k);
            match rng.gen_range(0..3) {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = offs.entry(k.clone()) {
                        t.insert(h, next);
                        e.insert(next);
                        next += 1;
                    }
                }
                1 => {
                    let expect = offs.get(&k).copied();
                    assert_eq!(t.lookup(h, |o| Some(o) == expect), expect);
                }
                _ => {
                    let expect = offs.remove(&k);
                    assert_eq!(t.remove(h, |o| Some(o) == expect), expect);
                }
            }
            assert_eq!(t.len(), offs.len());
        }
    }

    #[test]
    fn chains_count_dereferences() {
        let mut t = ChainedTable::new(1);
        for i in 0..32u64 {
            t.insert(hash_key(format!("k{i}").as_bytes()), i);
        }
        t.reset_stats();
        t.lookup(hash_key(b"k0"), |o| o == 0); // inserted first -> deepest
        assert!(t.stats().buckets_probed >= 32, "expected full chain walk");
    }
}
