//! Self-verifying items à la Pilaf — the alternative §4.2.3 argues against.
//!
//! Pilaf lets clients detect read-write races by storing a checksum over the
//! whole item; every one-sided read re-computes it. HydraDB's guardian word
//! replaces that with a single atomic flag plus out-of-place updates, paying
//! O(1) per validation instead of O(item size) (and nothing on the server
//! beyond the flip). This module implements the checksum design for the
//! A-CONSISTENCY ablation so the cost difference is measurable rather than
//! asserted: see `crates/bench/benches/consistency.rs`.

/// CRC-64/XZ (ECMA-182 polynomial, reflected), table-driven.
pub struct Crc64 {
    table: [u64; 256],
}

const POLY: u64 = 0xC96C_5795_D787_0F42; // reflected ECMA-182

impl Default for Crc64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc64 {
    /// Builds the lookup table.
    pub fn new() -> Self {
        let mut table = [0u64; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u64;
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        Crc64 { table }
    }

    /// Checksums `data`.
    pub fn checksum(&self, data: &[u8]) -> u64 {
        let mut crc = u64::MAX;
        for &b in data {
            crc = self.table[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
        }
        !crc
    }
}

/// A Pilaf-style self-verifying item: `[klen:4][vlen:4][key][value][crc:8]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChecksumItem {
    buf: Vec<u8>,
}

/// Validation outcome for a fetched self-verifying blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChecksumVerdict {
    /// Checksum matched; value extracted.
    Valid(Vec<u8>),
    /// Torn or modified read detected.
    Mismatch,
    /// Structurally unparseable.
    Corrupt,
}

impl ChecksumItem {
    /// Serializes an item with its trailing checksum (what Pilaf's server
    /// pays on *every* write — O(key+value)).
    pub fn build(crc: &Crc64, key: &[u8], value: &[u8]) -> ChecksumItem {
        let mut buf = Vec::with_capacity(16 + key.len() + value.len());
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
        buf.extend_from_slice(key);
        buf.extend_from_slice(value);
        let sum = crc.checksum(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        ChecksumItem { buf }
    }

    /// The serialized bytes (what a one-sided read fetches).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Client-side validation: recompute the checksum over the fetched blob
    /// (what Pilaf pays on *every* read — O(key+value)).
    pub fn verify(crc: &Crc64, blob: &[u8]) -> ChecksumVerdict {
        if blob.len() < 16 {
            return ChecksumVerdict::Corrupt;
        }
        let klen = u32::from_le_bytes(blob[0..4].try_into().unwrap()) as usize;
        let vlen = u32::from_le_bytes(blob[4..8].try_into().unwrap()) as usize;
        let body = 8 + klen + vlen;
        if blob.len() < body + 8 {
            return ChecksumVerdict::Corrupt;
        }
        let stored = u64::from_le_bytes(blob[body..body + 8].try_into().unwrap());
        if crc.checksum(&blob[..body]) != stored {
            return ChecksumVerdict::Mismatch;
        }
        ChecksumVerdict::Valid(blob[8 + klen..body].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_known_vector() {
        // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA
        let crc = Crc64::new();
        assert_eq!(crc.checksum(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc.checksum(b""), 0);
    }

    #[test]
    fn roundtrip_validates() {
        let crc = Crc64::new();
        let item = ChecksumItem::build(&crc, b"user:42", b"some value bytes");
        match ChecksumItem::verify(&crc, item.bytes()) {
            ChecksumVerdict::Valid(v) => assert_eq!(v, b"some value bytes"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_bit_flip_detected() {
        let crc = Crc64::new();
        let item = ChecksumItem::build(&crc, b"key", b"value-value-value");
        let mut blob = item.bytes().to_vec();
        for byte in 0..blob.len() - 8 {
            blob[byte] ^= 0x10;
            assert_ne!(
                ChecksumItem::verify(&crc, &blob),
                ChecksumVerdict::Valid(b"value-value-value".to_vec()),
                "flip at byte {byte} undetected"
            );
            blob[byte] ^= 0x10;
        }
    }

    #[test]
    fn torn_read_detected() {
        // Simulate a read racing an in-place update: half old, half new.
        let crc = Crc64::new();
        let old = ChecksumItem::build(&crc, b"k", &[0xAAu8; 64]);
        let new = ChecksumItem::build(&crc, b"k", &[0xBBu8; 64]);
        let mut torn = old.bytes().to_vec();
        torn[40..].copy_from_slice(&new.bytes()[40..]);
        assert_eq!(ChecksumItem::verify(&crc, &torn), ChecksumVerdict::Mismatch);
    }

    #[test]
    fn truncation_is_corrupt() {
        let crc = Crc64::new();
        let item = ChecksumItem::build(&crc, b"key", b"value");
        assert_eq!(
            ChecksumItem::verify(&crc, &item.bytes()[..10]),
            ChecksumVerdict::Corrupt
        );
        assert_eq!(ChecksumItem::verify(&crc, &[]), ChecksumVerdict::Corrupt);
    }
}
