//! Per-shard read-heat tracking: a space-saving top-k sketch (Metwally et
//! al., "Efficient Computation of Frequent and Top-k Elements in Data
//! Streams") over key hashes.
//!
//! The shard touches the sketch on every GET; keys whose estimated count
//! clears a threshold are *hot* and have their replica remote pointers
//! exported in GET responses, turning replication capacity into read
//! capacity exactly where the skew concentrates. Capacity is fixed at
//! construction and all operations are allocation-free: the monitored set
//! lives in a preallocated slot array scanned linearly (capacities are a
//! few dozen to a few hundred entries — one cache sweep, not a hash table).
//!
//! Space-saving guarantee: any key with true count > N/k is in the sketch,
//! and estimates never undercount (a displaced key inherits the victim's
//! count as its error bound).

/// One monitored key: hash, estimated count, and the overestimation bound
/// inherited from the displaced predecessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeatEntry {
    /// Avalanche-mixed key hash (see [`crate::hash_key`]).
    pub hash: u64,
    /// Estimated touch count (count of the displaced victim + touches).
    pub count: u64,
    /// Error bound: the count this entry started from on admission.
    pub err: u64,
}

/// Fixed-capacity space-saving top-k sketch.
#[derive(Debug, Clone)]
pub struct HeatSketch {
    entries: Vec<HeatEntry>,
    cap: usize,
    /// Total touches observed (for diagnostics / N·k bound checks).
    total: u64,
}

impl HeatSketch {
    /// Builds a sketch tracking up to `cap` keys (`cap` ≥ 1).
    pub fn new(cap: usize) -> HeatSketch {
        let cap = cap.max(1);
        HeatSketch {
            entries: Vec::with_capacity(cap),
            cap,
            total: 0,
        }
    }

    /// Records one read of `hash`; returns the key's updated estimate.
    pub fn touch(&mut self, hash: u64) -> u64 {
        self.total += 1;
        let mut min_idx = 0usize;
        let mut min_count = u64::MAX;
        for (i, e) in self.entries.iter_mut().enumerate() {
            if e.hash == hash {
                e.count += 1;
                return e.count;
            }
            if e.count < min_count {
                min_count = e.count;
                min_idx = i;
            }
        }
        if self.entries.len() < self.cap {
            self.entries.push(HeatEntry {
                hash,
                count: 1,
                err: 0,
            });
            return 1;
        }
        // Displace the coldest monitored key; the newcomer inherits its
        // count (the space-saving overestimate) plus this touch.
        let e = &mut self.entries[min_idx];
        e.hash = hash;
        e.err = e.count;
        e.count += 1;
        e.count
    }

    /// Estimated count for `hash`; 0 when not monitored.
    pub fn estimate(&self, hash: u64) -> u64 {
        self.entries
            .iter()
            .find(|e| e.hash == hash)
            .map_or(0, |e| e.count)
    }

    /// Whether `hash` is currently estimated at or above `threshold`
    /// *guaranteed* touches (estimate minus the admission error bound, so a
    /// freshly displaced cold key does not spuriously read as hot).
    pub fn is_hot(&self, hash: u64, threshold: u64) -> bool {
        self.entries
            .iter()
            .find(|e| e.hash == hash)
            .is_some_and(|e| e.count.saturating_sub(e.err) >= threshold)
    }

    /// The monitored set (unordered).
    pub fn entries(&self) -> &[HeatEntry] {
        &self.entries
    }

    /// Total touches observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Halves every count and error bound — periodic decay so heat follows
    /// the current access distribution. Entries decayed to zero are kept
    /// (they are the natural next victims).
    pub fn decay(&mut self) {
        for e in &mut self.entries {
            e.count /= 2;
            e.err /= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_heavy_hitters_exactly_when_under_capacity() {
        let mut s = HeatSketch::new(8);
        for _ in 0..50 {
            s.touch(1);
        }
        for _ in 0..10 {
            s.touch(2);
        }
        assert_eq!(s.estimate(1), 50);
        assert_eq!(s.estimate(2), 10);
        assert!(s.is_hot(1, 50));
        assert!(!s.is_hot(2, 11));
    }

    #[test]
    fn heavy_hitter_survives_a_flood_of_cold_keys() {
        const HOT: u64 = 0xAB;
        let mut s = HeatSketch::new(16);
        for _ in 0..1_000 {
            s.touch(HOT);
        }
        // 10k distinct cold keys churn the other 15 slots.
        for i in 0..10_000u64 {
            s.touch(i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1 << 63);
        }
        assert!(
            s.is_hot(HOT, 500),
            "space-saving must retain the heavy hitter"
        );
    }

    #[test]
    fn displaced_keys_carry_error_bounds() {
        let mut s = HeatSketch::new(2);
        for _ in 0..10 {
            s.touch(1);
        }
        for _ in 0..5 {
            s.touch(2);
        }
        s.touch(3); // displaces key 2 (count 5) -> estimate 6, err 5
        assert_eq!(s.estimate(3), 6);
        assert!(
            !s.is_hot(3, 2),
            "guaranteed count (estimate - err) must gate hotness"
        );
        assert!(s.is_hot(1, 10));
    }

    #[test]
    fn decay_halves_counts() {
        let mut s = HeatSketch::new(4);
        for _ in 0..100 {
            s.touch(7);
        }
        s.decay();
        assert_eq!(s.estimate(7), 50);
    }

    #[test]
    fn touch_is_zero_alloc_after_construction() {
        let mut s = HeatSketch::new(64);
        // Fill to capacity first (pushes stay within the preallocation).
        for i in 0..64u64 {
            s.touch(i);
        }
        // 10k touches over a churning key set: no growth possible.
        for i in 0..10_000u64 {
            s.touch(i % 200);
        }
        assert_eq!(s.entries().len(), 64);
    }
}
