//! HydraDB's server-side memory engine.
//!
//! A *shard* (§4.1.1) exclusively owns one partition: a registered-memory
//! [`Arena`] holding the key-value items, a cache-friendly compact
//! [`CompactTable`] (§4.1.3) indexing them, and a [`ReclaimQueue`] deferring
//! memory reuse until leases expire (§4.2.3). The [`ShardEngine`] ties these
//! together into the operation set the server and the replication applier
//! drive.
//!
//! Concurrency contract, mirroring the paper:
//!
//! * Exactly **one writer** (the shard thread) mutates a partition. The index
//!   and free lists are therefore plain `&mut` structures.
//! * **Many readers** (remote clients doing one-sided RDMA Reads) may read
//!   item memory at any time with zero coordination. Item bytes live in
//!   `AtomicU64` words; items are immutable after publication except for two
//!   trailing atomic words — the *guardian* (liveness flag flipped on
//!   update/delete) and the *lease* (expiry timestamp) — so racy reads are
//!   well-defined and validated by the guardian protocol on the client side.

pub mod arena;
pub mod chained;
pub mod checksum;
pub mod engine;
pub mod heat;
pub mod index;
pub mod item;
pub mod packed;
pub mod reclaim;
pub mod skiplist;
pub mod table;

pub use arena::{size_class, Arena, ArenaStats};
pub use chained::ChainedTable;
pub use checksum::{ChecksumItem, ChecksumVerdict, Crc64};
pub use engine::{
    EngineConfig, EngineError, EngineStats, GetResult, ItemInfo, ShardEngine, WriteMode,
};
pub use heat::{HeatEntry, HeatSketch};
pub use index::{AnyIndex, Index, IndexKind};
pub use item::{
    item_words, rdma_read_len, FetchedItem, ItemError, ItemRef, GUARD_DEAD, GUARD_VALID,
};
pub use packed::{PackedTable, GROUP_SLOTS};
pub use reclaim::ReclaimQueue;
pub use skiplist::{HybridTable, SkipList, SkipListStats, SKIP_MAX_HEIGHT};
pub use table::{CompactTable, TableStats, LOOKUP_BATCH};

/// FNV-1a offset basis (shared with [`item::ItemRef::stored_key_hash`],
/// which must reproduce [`hash_key`] from arena words byte-for-byte).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Final avalanche (splitmix64 tail) so low bits are well mixed even for
/// short sequential keys.
#[inline]
pub(crate) fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// 64-bit key hash used everywhere: FNV-1a. Stable across runs (and thus
/// across the consistent-hashing ring, signatures, and partition routing).
#[inline]
pub fn hash_key(key: &[u8]) -> u64 {
    let mut h: u64 = FNV_OFFSET;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    avalanche(h)
}

/// The 16-bit slot signature derived from a key hash (§4.1.3).
#[inline]
pub fn signature(hash: u64) -> u16 {
    // Use high bits, which are independent of the bucket-index bits.
    let s = (hash >> 48) as u16;
    // Zero is reserved for "empty slot"; remap.
    if s == 0 {
        0x5AA5
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_key(b"user:1"), hash_key(b"user:1"));
        assert_ne!(hash_key(b"user:1"), hash_key(b"user:2"));
        // Low bits must differ across sequential keys (bucket selection).
        let mut low = std::collections::HashSet::new();
        for i in 0..1000u32 {
            low.insert(hash_key(format!("key{i}").as_bytes()) & 0xFFF);
        }
        assert!(low.len() > 800, "low bits poorly mixed: {}", low.len());
    }

    #[test]
    fn signature_never_zero() {
        for i in 0..10_000u64 {
            assert_ne!(signature(i << 48), 0);
        }
    }
}
