//! Cache-line-packed open-addressing hash index with SWAR tag probing.
//!
//! This is the successor to the overflow-chained [`crate::CompactTable`]: the
//! same one-cache-line-per-probe budget, but with open addressing instead of
//! dynamically allocated overflow buckets, wordwise SWAR probing of an 8-bit
//! tag array instead of a per-slot signature scan, and *incremental* resize
//! instead of a fixed main branch. Each group is exactly one 64-byte cache
//! line:
//!
//! ```text
//! word 0 : tag array  [ tag0 ][ tag1 ] ... [ tag6 ][ control byte ]
//! word i : slot i-1   [ meta : 16 bits ][ arena word offset : 48 bits ]
//!          meta = [ entry incarnation : 8 ][ lease class : 8 ]
//! ```
//!
//! * **Tags** — one byte per slot derived from the high hash bits
//!   (`0x00` = empty, `0x01` = tombstone, live tags remapped into
//!   `0x02..=0xFF`). A lookup broadcasts the probe tag across a `u64` and
//!   finds candidate lanes with a branch-free zero-byte SWAR test — no
//!   per-slot loop, no nightly SIMD.
//! * **Control byte** — the group's `OVERFLOWED` sticky bit (an insert once
//!   passed through this group while it was full, so probes must continue to
//!   the next group), the `MIGRATED` bit (resize has drained this group, but
//!   probe chains still pass through it), and a 6-bit group incarnation
//!   bumped on every slot mutation.
//! * **Slot meta** — the paper's lease + incarnation word packed inline next
//!   to the item pointer: the 8-bit *entry incarnation* increments on every
//!   out-of-place update of the key (so a stale location can be recognized
//!   from the bucket line alone), and the 8-bit *lease class* mirrors the
//!   lease tier last granted by the engine (via [`PackedTable::touch`]).
//!   The fast-path GET and the one-sided-read address computation therefore
//!   touch a single cache line before the value bytes.
//!
//! **Probing** is bounded linear group probing: start at `hash & mask`, stop
//! at the first group whose `OVERFLOWED`/`MIGRATED` bits are both clear.
//! Deletion writes a tombstone when the group has overflowed (so chains stay
//! walkable) and a plain empty lane otherwise.
//!
//! **Incremental resize** never stops the world: when occupancy (plus
//! tombstone debt) crosses the configured ceiling, a fresh group array is
//! installed and the full one becomes the *old half*. Every subsequent
//! mutation migrates one old group into the new array (re-deriving each
//! entry's hash from its arena key via the caller's `rehash` closure), so
//! the rehash cost is spread across the very mutations that caused the
//! growth. Lookups probe the new half, then the old; drained old groups are
//! marked `MIGRATED` so probe chains that pass through them keep walking.
//! A fully drained old half is *retired*, not freed: it parks on a retire
//! list until the owner pumps [`PackedTable::reclaim_retired`] from its
//! reclamation epoch (the engine does this from the same pump that frees
//! lease-expired item blocks, on put *and* delete paths).
//!
//! **Address stability** — resize and displacement move *index entries*,
//! never items: arena word offsets handed to clients as remote pointers stay
//! valid across any amount of index churn (see `hydra_wire::rptr`).

use crate::table::TableStats;

/// Slots per 64-byte group (7 × 8 B slots + 8 B tag/control word).
pub const GROUP_SLOTS: usize = 7;

const TAG_EMPTY: u8 = 0x00;
const TAG_TOMB: u8 = 0x01;

const CTRL_SHIFT: u64 = 56;
const CTRL_OVERFLOWED: u8 = 0x01;
const CTRL_MIGRATED: u8 = 0x02;
const CTRL_INC_STEP: u8 = 0x04; // incarnation lives in bits 2..8

const OFF_MASK: u64 = (1 << 48) - 1;
const META_SHIFT: u64 = 48;
const META_LEASE_MASK: u16 = 0x00FF;
const META_INC_STEP: u16 = 0x0100;

const LSB: u64 = 0x0101_0101_0101_0101;
const MSB: u64 = 0x8080_8080_8080_8080;
/// High bit of every tag lane (lanes 0..=6; lane 7 is the control byte).
const LANE_MSB: u64 = 0x0080_8080_8080_8080;

/// Exact per-byte zero detector: bit 7 of byte `i` is set iff byte `i` of
/// `v` is zero. Unlike the classic `(v - LSB) & !v & MSB` trick this form is
/// carry-free, so it has no false positives — which matters because the
/// insert path trusts it to find genuinely free lanes.
#[inline]
fn zero_byte_mask(v: u64) -> u64 {
    !(((v & !MSB).wrapping_add(!MSB)) | v | !MSB)
}

/// Lanes (0..=6) of `tags` equal to `b`, as a mask of per-lane high bits.
#[inline]
fn byte_eq_mask(tags: u64, b: u8) -> u64 {
    zero_byte_mask(tags ^ LSB.wrapping_mul(b as u64)) & LANE_MSB
}

/// The 8-bit probe tag derived from a key hash. Uses bits 56..64 — disjoint
/// from the group-index bits — remapped off the empty/tombstone encodings.
#[inline]
pub fn tag_of(hash: u64) -> u8 {
    let t = (hash >> 56) as u8;
    if t < 2 {
        t + 2
    } else {
        t
    }
}

/// One cache line: 7 tag bytes + control byte, then 7 slot words.
#[derive(Clone, Copy, Default)]
#[repr(C, align(64))]
struct Group {
    tags: u64,
    slots: [u64; GROUP_SLOTS],
}

// The layout contract the whole design rests on; checked at compile time
// (and re-asserted by a named test that scripts/check.sh runs explicitly).
const _: () = assert!(std::mem::size_of::<Group>() == 64);
const _: () = assert!(std::mem::align_of::<Group>() == 64);

impl Group {
    #[inline]
    fn ctrl(&self) -> u8 {
        (self.tags >> CTRL_SHIFT) as u8
    }

    #[inline]
    fn set_ctrl(&mut self, ctrl: u8) {
        self.tags = (self.tags & !(0xFFu64 << CTRL_SHIFT)) | ((ctrl as u64) << CTRL_SHIFT);
    }

    #[inline]
    fn overflowed(&self) -> bool {
        self.ctrl() & CTRL_OVERFLOWED != 0
    }

    #[inline]
    fn migrated(&self) -> bool {
        self.ctrl() & CTRL_MIGRATED != 0
    }

    /// Probe chains continue through overflowed and migrated groups.
    #[inline]
    fn chains_on(&self) -> bool {
        self.ctrl() & (CTRL_OVERFLOWED | CTRL_MIGRATED) != 0
    }

    #[inline]
    fn set_flag(&mut self, flag: u8) {
        self.set_ctrl(self.ctrl() | flag);
    }

    /// 6-bit wrapping group incarnation (bits 2..8 of the control byte),
    /// bumped on every slot mutation.
    #[inline]
    fn incarnation(&self) -> u8 {
        self.ctrl() >> 2
    }

    #[inline]
    fn bump_incarnation(&mut self) {
        self.set_ctrl((self.ctrl() & 0x03) | (self.ctrl().wrapping_add(CTRL_INC_STEP) & 0xFC));
    }

    #[inline]
    fn tag_at(&self, lane: usize) -> u8 {
        (self.tags >> (lane * 8)) as u8
    }

    #[inline]
    fn set_tag(&mut self, lane: usize, tag: u8) {
        let shift = lane * 8;
        self.tags = (self.tags & !(0xFFu64 << shift)) | ((tag as u64) << shift);
        self.bump_incarnation();
    }

    #[inline]
    fn slot_off(&self, lane: usize) -> u64 {
        self.slots[lane] & OFF_MASK
    }

    #[inline]
    fn slot_meta(&self, lane: usize) -> u16 {
        (self.slots[lane] >> META_SHIFT) as u16
    }

    #[inline]
    fn set_slot(&mut self, lane: usize, off: u64, meta: u16) {
        debug_assert!(off <= OFF_MASK);
        self.slots[lane] = off | ((meta as u64) << META_SHIFT);
    }

    /// Candidate lanes whose tag equals `tag`.
    #[inline]
    fn match_mask(&self, tag: u8) -> u64 {
        byte_eq_mask(self.tags, tag)
    }

    /// Lanes free for insertion (empty or tombstone).
    #[inline]
    fn free_mask(&self) -> u64 {
        byte_eq_mask(self.tags, TAG_EMPTY) | byte_eq_mask(self.tags, TAG_TOMB)
    }

    #[inline]
    fn live_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..GROUP_SLOTS).filter(|&l| self.tag_at(l) >= 2)
    }
}

#[inline]
fn lane_of(bit: u64) -> usize {
    (bit.trailing_zeros() / 8) as usize
}

/// The group array being drained by an in-progress incremental resize.
struct OldHalf {
    groups: Box<[Group]>,
    mask: u64,
    /// Next group to migrate; groups below this are `MIGRATED`.
    pos: usize,
}

/// Cache-line-packed open-addressing index mapping 64-bit key hashes to
/// 48-bit arena word offsets. Full key equality is delegated to the caller's
/// `is_match` predicate; mutations take a `rehash` closure so incremental
/// resize can re-derive the home group of migrated entries from their stored
/// keys. See the module docs for layout and protocol.
pub struct PackedTable {
    groups: Box<[Group]>,
    mask: u64,
    len: usize,
    /// Tombstone lanes in the live half (resize-debt accounting).
    tombs: usize,
    old: Option<OldHalf>,
    /// Drained old halves awaiting epoch reclamation.
    retired: Vec<Box<[Group]>>,
    /// Resize when `(len + tombs) * 8 >= slots * max_load_eighths`.
    max_load_eighths: u32,
    stats: TableStats,
}

impl PackedTable {
    /// Creates a table with at least `groups` groups (rounded up to a power
    /// of two) and the default occupancy ceiling of 7/8.
    pub fn new(groups: usize) -> Self {
        Self::with_max_load(groups, 7)
    }

    /// Creates a table sized for `items` entries at moderate occupancy.
    pub fn with_capacity(items: usize) -> Self {
        Self::new((items.max(1) * 8 / 7 / GROUP_SLOTS).max(1))
    }

    /// Creates a table with an explicit occupancy ceiling in eighths
    /// (`max_load_eighths = 8` disables growth — benchmark use only, for
    /// pinning a target load factor).
    pub fn with_max_load(groups: usize, max_load_eighths: u32) -> Self {
        assert!((1..=8).contains(&max_load_eighths));
        let n = groups.next_power_of_two().max(1);
        PackedTable {
            groups: vec![Group::default(); n].into_boxed_slice(),
            mask: (n - 1) as u64,
            len: 0,
            tombs: 0,
            old: None,
            retired: Vec::new(),
            max_load_eighths,
            stats: TableStats::default(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    /// Whether an incremental resize is in progress.
    pub fn is_resizing(&self) -> bool {
        self.old.is_some()
    }

    /// `(migrated, total)` old groups of the in-progress resize.
    pub fn resize_progress(&self) -> (usize, usize) {
        match &self.old {
            Some(o) => (o.pos, o.groups.len()),
            None => (0, 0),
        }
    }

    /// Bytes held by live group arrays (both halves during a resize).
    pub fn mem_bytes(&self) -> usize {
        let old = self.old.as_ref().map_or(0, |o| o.groups.len());
        (self.groups.len() + old) * std::mem::size_of::<Group>()
    }

    /// Bytes parked on the retire list awaiting epoch reclamation.
    pub fn retired_bytes(&self) -> usize {
        self.retired
            .iter()
            .map(|g| g.len() * std::mem::size_of::<Group>())
            .sum()
    }

    /// Frees every retired old half; returns the number of group arrays
    /// reclaimed. Driven by the owner's reclamation epoch (the engine pumps
    /// this wherever it pumps lease-expired item blocks).
    pub fn reclaim_retired(&mut self) -> usize {
        let n = self.retired.len();
        self.retired.clear();
        n
    }

    /// Looks up the entry whose tag matches `hash` and for which
    /// `is_match(offset)` confirms full key equality. Returns the offset.
    pub fn lookup(&mut self, hash: u64, mut is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        self.stats.lookups += 1;
        let tag = tag_of(hash);
        if let Some((off, _)) =
            Self::probe(&self.groups, self.mask, hash, tag, &mut self.stats, |off| {
                is_match(off)
            })
        {
            return Some(off);
        }
        if let Some(old) = &self.old {
            if let Some((off, _)) =
                Self::probe(&old.groups, old.mask, hash, tag, &mut self.stats, is_match)
            {
                return Some(off);
            }
        }
        None
    }

    /// [`lookup`](Self::lookup) that also returns the slot's packed meta
    /// word (`[incarnation:8][lease class:8]`) straight from the bucket
    /// line. Charges the same statistics as a plain lookup.
    pub fn lookup_meta(
        &mut self,
        hash: u64,
        mut is_match: impl FnMut(u64) -> bool,
    ) -> Option<(u64, u16)> {
        self.stats.lookups += 1;
        let tag = tag_of(hash);
        if let Some(hit) = Self::probe(&self.groups, self.mask, hash, tag, &mut self.stats, |off| {
            is_match(off)
        }) {
            return Some(hit);
        }
        if let Some(old) = &self.old {
            if let Some(hit) =
                Self::probe(&old.groups, old.mask, hash, tag, &mut self.stats, is_match)
            {
                return Some(hit);
            }
        }
        None
    }

    /// Walks the probe chain of `hash` in one half, confirming candidates
    /// through `is_match`. Associated fn so callers can split borrows.
    fn probe(
        groups: &[Group],
        mask: u64,
        hash: u64,
        tag: u8,
        stats: &mut TableStats,
        mut is_match: impl FnMut(u64) -> bool,
    ) -> Option<(u64, u16)> {
        let mut idx = (hash & mask) as usize;
        for _ in 0..groups.len() {
            stats.buckets_probed += 1;
            let g = &groups[idx];
            let mut m = g.match_mask(tag);
            while m != 0 {
                let lane = lane_of(m);
                m &= m - 1;
                stats.full_compares += 1;
                let off = g.slot_off(lane);
                if is_match(off) {
                    return Some((off, g.slot_meta(lane)));
                }
                stats.false_positives += 1;
            }
            if !g.chains_on() {
                return None;
            }
            idx = (idx + 1) & mask as usize;
        }
        None
    }

    /// Batched lookup: pass one touches (prefetches) every key's home cache
    /// line — both halves during a resize — so the misses overlap; pass two
    /// resolves each key with the ordinary scalar probe. Results and charged
    /// statistics are exactly those of per-key [`lookup`](Self::lookup)
    /// calls in key order; only the memory-access schedule differs. At most
    /// [`crate::LOOKUP_BATCH`] keys per call.
    pub fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        mut is_match: impl FnMut(usize, u64) -> bool,
    ) {
        assert!(
            hashes.len() <= crate::table::LOOKUP_BATCH,
            "batch exceeds LOOKUP_BATCH"
        );
        assert!(out.len() >= hashes.len(), "output buffer too small");
        for &hash in hashes {
            std::hint::black_box(self.groups[(hash & self.mask) as usize].tags);
            if let Some(old) = &self.old {
                std::hint::black_box(old.groups[(hash & old.mask) as usize].tags);
            }
        }
        for (i, &hash) in hashes.iter().enumerate() {
            out[i] = self.lookup(hash, |off| is_match(i, off));
        }
    }

    /// Occupancy-ceiling check; `true` means growth is due.
    fn over_ceiling(&self) -> bool {
        (self.len + self.tombs) as u64 * 8
            >= self.groups.len() as u64 * GROUP_SLOTS as u64 * self.max_load_eighths as u64
    }

    /// Inserts `(hash, offset)`. The caller guarantees the key is absent.
    /// `rehash` re-derives the hash of a stored offset (used to migrate one
    /// old group if a resize is in progress).
    pub fn insert(&mut self, hash: u64, offset: u64, rehash: impl FnMut(u64) -> u64) {
        assert!(offset <= OFF_MASK, "offset exceeds 48 bits");
        if self.old.is_none() && self.over_ceiling() && self.max_load_eighths < 8 {
            self.begin_resize(self.groups.len() * 2);
        }
        assert!(
            self.len + self.tombs < self.groups.len() * GROUP_SLOTS,
            "packed table full"
        );
        let reused_tomb = Self::place(&mut self.groups, self.mask, hash, offset, 0);
        if reused_tomb {
            self.tombs -= 1;
        }
        self.len += 1;
        self.migrate_step(rehash);
    }

    /// Raw placement into one half: bounded linear group probing from the
    /// home group, setting the sticky `OVERFLOWED` bit on every full group
    /// passed. Returns whether a tombstone lane was reused.
    fn place(groups: &mut [Group], mask: u64, hash: u64, offset: u64, meta: u16) -> bool {
        let tag = tag_of(hash);
        let mut idx = (hash & mask) as usize;
        loop {
            let g = &mut groups[idx];
            let free = g.free_mask();
            if free != 0 {
                let lane = lane_of(free);
                let was_tomb = g.tag_at(lane) == TAG_TOMB;
                g.set_slot(lane, offset, meta);
                g.set_tag(lane, tag);
                return was_tomb;
            }
            g.set_flag(CTRL_OVERFLOWED);
            idx = (idx + 1) & mask as usize;
        }
    }

    /// Replaces the offset of an existing entry (out-of-place update: same
    /// key, new item location). Bumps the slot's entry incarnation and
    /// resets its lease class (the new item has not been leased yet).
    /// Returns the old offset.
    pub fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        mut is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        assert!(new_offset <= OFF_MASK, "offset exceeds 48 bits");
        let tag = tag_of(hash);
        let old_mask = self.old.as_ref().map(|o| o.mask);
        let halves: [Option<(&mut [Group], u64)>; 2] = [
            Some((&mut self.groups, self.mask)),
            self.old
                .as_mut()
                .map(|o| (&mut o.groups[..], old_mask.expect("old half present"))),
        ];
        let mut found = None;
        'halves: for half in halves.into_iter().flatten() {
            let (groups, mask) = half;
            let mut idx = (hash & mask) as usize;
            for _ in 0..groups.len() {
                let g = &mut groups[idx];
                let mut m = g.match_mask(tag);
                while m != 0 {
                    let lane = lane_of(m);
                    m &= m - 1;
                    let off = g.slot_off(lane);
                    if is_match(off) {
                        let inc =
                            (g.slot_meta(lane) & !META_LEASE_MASK).wrapping_add(META_INC_STEP);
                        g.set_slot(lane, new_offset, inc);
                        g.bump_incarnation();
                        found = Some(off);
                        break 'halves;
                    }
                }
                if !g.chains_on() {
                    continue 'halves;
                }
                idx = (idx + 1) & mask as usize;
            }
        }
        if found.is_some() {
            self.migrate_step(rehash);
        }
        found
    }

    /// Removes the entry for `hash` confirmed by `is_match`; returns its
    /// offset. Writes a tombstone when the group has overflowed (probe
    /// chains must keep walking through it) and a plain empty lane
    /// otherwise.
    pub fn remove(
        &mut self,
        hash: u64,
        mut is_match: impl FnMut(u64) -> bool,
        rehash: impl FnMut(u64) -> u64,
    ) -> Option<u64> {
        let tag = tag_of(hash);
        let mut removed = None;
        let mut main_tomb = false;
        'done: for half in 0..2 {
            let (groups, mask) = match half {
                0 => (&mut self.groups[..], self.mask),
                _ => match &mut self.old {
                    Some(o) => (&mut o.groups[..], o.mask),
                    None => break,
                },
            };
            let mut idx = (hash & mask) as usize;
            for _ in 0..groups.len() {
                let g = &mut groups[idx];
                let mut m = g.match_mask(tag);
                while m != 0 {
                    let lane = lane_of(m);
                    m &= m - 1;
                    let off = g.slot_off(lane);
                    if is_match(off) {
                        let tomb = g.overflowed();
                        g.set_tag(lane, if tomb { TAG_TOMB } else { TAG_EMPTY });
                        g.set_slot(lane, 0, 0);
                        removed = Some(off);
                        main_tomb = tomb && half == 0;
                        break 'done;
                    }
                }
                if !g.chains_on() {
                    break;
                }
                idx = (idx + 1) & mask as usize;
            }
        }
        if let Some(_off) = removed {
            self.len -= 1;
            if main_tomb {
                self.tombs += 1;
            }
            // Tombstone debt in a non-resizing table degrades probes without
            // growing len; a same-size incremental rebuild purges it.
            if self.old.is_none()
                && self.tombs * 4 > self.groups.len() * GROUP_SLOTS
                && self.max_load_eighths < 8
            {
                self.begin_resize(self.groups.len());
            }
            self.migrate_step(rehash);
        }
        removed
    }

    /// Refreshes the inline lease class of the entry for `(hash, offset)`.
    /// The engine calls this right after a GET/renewal extended the item's
    /// lease — the group line is still hot, so the write is effectively
    /// free. Identity is by offset; no key comparison is needed.
    pub fn touch(&mut self, hash: u64, offset: u64, lease_class: u8) {
        self.stats.touches += 1;
        let tag = tag_of(hash);
        for half in 0..2 {
            let (groups, mask) = match half {
                0 => (&mut self.groups[..], self.mask),
                _ => match &mut self.old {
                    Some(o) => (&mut o.groups[..], o.mask),
                    None => return,
                },
            };
            let mut idx = (hash & mask) as usize;
            for _ in 0..groups.len() {
                let g = &mut groups[idx];
                let mut m = g.match_mask(tag);
                while m != 0 {
                    let lane = lane_of(m);
                    m &= m - 1;
                    if g.slot_off(lane) == offset {
                        let meta = (g.slot_meta(lane) & !META_LEASE_MASK) | (lease_class as u16);
                        g.set_slot(lane, offset, meta);
                        return;
                    }
                }
                if !g.chains_on() {
                    break;
                }
                idx = (idx + 1) & mask as usize;
            }
        }
    }

    /// Installs a fresh group array and turns the current one into the old
    /// half; entries migrate one group per subsequent mutation.
    fn begin_resize(&mut self, new_groups: usize) {
        debug_assert!(self.old.is_none(), "nested resize");
        let n = new_groups.next_power_of_two().max(1);
        let fresh = vec![Group::default(); n].into_boxed_slice();
        let old_groups = std::mem::replace(&mut self.groups, fresh);
        self.old = Some(OldHalf {
            groups: old_groups,
            mask: self.mask,
            pos: 0,
        });
        self.mask = (n - 1) as u64;
        self.stats.resizes += 1;
        self.stats.tombstones_purged += self.tombs as u64;
        self.tombs = 0;
    }

    /// Migrates one old group into the live half (the issue's "split one
    /// group per mutation"), re-deriving each entry's home via `rehash`.
    /// Drained groups are flagged `MIGRATED` so probe chains keep walking
    /// through them; a fully drained old half moves to the retire list.
    fn migrate_step(&mut self, mut rehash: impl FnMut(u64) -> u64) {
        let Some(old) = &mut self.old else {
            return;
        };
        if old.pos < old.groups.len() {
            let g = old.groups[old.pos];
            for lane in g.live_lanes() {
                let off = g.slot_off(lane);
                let meta = g.slot_meta(lane);
                let hash = rehash(off);
                Self::place(&mut self.groups, self.mask, hash, off, meta);
                self.stats.displacements += 1;
            }
            let drained = &mut old.groups[old.pos];
            *drained = Group::default();
            drained.set_flag(CTRL_MIGRATED);
            debug_assert!(drained.migrated() && drained.chains_on());
            old.pos += 1;
            self.stats.migrated_groups += 1;
        }
        if old.pos >= old.groups.len() {
            let done = self.old.take().expect("old half present");
            self.retired.push(done.groups);
        }
    }

    /// Visits every stored offset (diagnostics, migration, eviction scans).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for g in self
            .groups
            .iter()
            .chain(self.old.iter().flat_map(|o| o.groups.iter()))
        {
            for lane in g.live_lanes() {
                f(g.slot_off(lane));
            }
        }
    }

    /// 6-bit incarnation of the home group of `hash` in the live half —
    /// changes whenever any slot of that group is mutated.
    pub fn group_incarnation(&self, hash: u64) -> u8 {
        self.groups[(hash & self.mask) as usize].incarnation()
    }
}

impl std::fmt::Debug for PackedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedTable")
            .field("len", &self.len)
            .field("groups", &self.groups.len())
            .field("tombs", &self.tombs)
            .field("resizing", &self.is_resizing())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_key;
    use std::collections::HashMap;

    /// Test scaffold mapping offsets back to keys so `is_match` and `rehash`
    /// can behave like the arena would.
    struct Model {
        table: PackedTable,
        by_off: HashMap<u64, Vec<u8>>,
        next_off: u64,
    }

    impl Model {
        fn new(groups: usize) -> Self {
            Model {
                table: PackedTable::new(groups),
                by_off: HashMap::new(),
                next_off: 1,
            }
        }

        fn insert(&mut self, key: &[u8]) -> u64 {
            let off = self.next_off;
            self.next_off += 1;
            self.by_off.insert(off, key.to_vec());
            let by_off = &self.by_off;
            self.table
                .insert(hash_key(key), off, |o| hash_key(&by_off[&o]));
            off
        }

        fn lookup(&mut self, key: &[u8]) -> Option<u64> {
            let by_off = &self.by_off;
            self.table.lookup(hash_key(key), |off| {
                by_off.get(&off).is_some_and(|k| k == key)
            })
        }

        fn remove(&mut self, key: &[u8]) -> Option<u64> {
            let by_off = &self.by_off;
            let got = self.table.remove(
                hash_key(key),
                |off| by_off.get(&off).is_some_and(|k| k == key),
                |o| hash_key(&by_off[&o]),
            );
            if let Some(off) = got {
                self.by_off.remove(&off);
            }
            got
        }
    }

    #[test]
    fn layout_is_one_aligned_cache_line() {
        assert_eq!(std::mem::size_of::<Group>(), 64);
        assert_eq!(std::mem::align_of::<Group>(), 64);
        // 7 slots + tag word fill the line exactly; no padding anywhere.
        assert_eq!(GROUP_SLOTS * 8 + 8, 64);
    }

    #[test]
    fn swar_masks_are_exact() {
        // Every byte value must be detected exactly — the insert path
        // depends on free_mask having no false positives.
        for b in 0..=255u8 {
            for lane in 0..8usize {
                let word = (b as u64) << (lane * 8);
                let m = zero_byte_mask(word ^ LSB.wrapping_mul(b as u64));
                for l in 0..8usize {
                    let flagged = m & (0x80u64 << (l * 8)) != 0;
                    let equal = ((word >> (l * 8)) as u8) == b;
                    assert_eq!(flagged, equal, "b={b:#x} lane={lane} l={l}");
                }
            }
        }
    }

    #[test]
    fn tag_never_collides_with_control_values() {
        for h in 0..10_000u64 {
            assert!(tag_of(h << 56) >= 2);
        }
    }

    #[test]
    fn insert_lookup_remove_basic() {
        let mut m = Model::new(4);
        let off = m.insert(b"alpha");
        assert_eq!(m.lookup(b"alpha"), Some(off));
        assert_eq!(m.lookup(b"beta"), None);
        assert_eq!(m.remove(b"alpha"), Some(off));
        assert_eq!(m.lookup(b"alpha"), None);
        assert_eq!(m.remove(b"alpha"), None);
        assert!(m.table.is_empty());
    }

    #[test]
    fn displacement_handles_group_overflow() {
        // 1-group table at pinned load: everything probes linearly.
        let mut m = Model::new(1);
        m.table = PackedTable::with_max_load(2, 8); // 14 slots, growth off
        let keys: Vec<Vec<u8>> = (0..14).map(|i| format!("key-{i}").into_bytes()).collect();
        let offs: Vec<u64> = keys.iter().map(|k| m.insert(k)).collect();
        for (k, &o) in keys.iter().zip(&offs) {
            assert_eq!(m.lookup(k), Some(o), "{}", String::from_utf8_lossy(k));
        }
        assert_eq!(m.table.len(), 14);
    }

    #[test]
    fn incremental_resize_preserves_all_entries() {
        let mut m = Model::new(1);
        let keys: Vec<Vec<u8>> = (0..2_000).map(|i| format!("rz-{i}").into_bytes()).collect();
        let offs: Vec<u64> = keys.iter().map(|k| m.insert(k)).collect();
        assert!(m.table.stats().resizes >= 3, "growth must have happened");
        for (k, &o) in keys.iter().zip(&offs) {
            assert_eq!(m.lookup(k), Some(o));
        }
        assert_eq!(m.table.len(), 2_000);
    }

    #[test]
    fn lookups_succeed_mid_resize_from_both_halves() {
        let mut m = Model::new(1);
        let mut inserted = Vec::new();
        // Insert until a resize is in progress, then verify every key while
        // entries are split across the halves.
        for i in 0..100_000 {
            let k = format!("mid-{i}").into_bytes();
            m.insert(&k);
            inserted.push(k);
            if m.table.is_resizing() {
                let (pos, total) = m.table.resize_progress();
                if pos * 2 < total {
                    break; // less than half migrated: both halves populated
                }
            }
        }
        assert!(m.table.is_resizing(), "never caught a resize in flight");
        for k in &inserted {
            assert!(m.lookup(k).is_some(), "{}", String::from_utf8_lossy(k));
        }
    }

    #[test]
    fn drained_halves_retire_and_reclaim() {
        let mut m = Model::new(1);
        for i in 0..4_000 {
            m.insert(format!("rt-{i}").as_bytes());
        }
        // Drive any in-flight migration to completion with removes.
        let mut i = 0;
        while m.table.is_resizing() {
            m.remove(format!("rt-{i}").as_bytes());
            i += 1;
        }
        assert!(
            m.table.retired_bytes() > 0,
            "old halves must park, not drop"
        );
        let n = m.table.reclaim_retired();
        assert!(n >= 1);
        assert_eq!(m.table.retired_bytes(), 0);
    }

    #[test]
    fn tombstone_debt_triggers_purge_rebuild() {
        // Tombstones only accrue in *overflowed* groups (elsewhere deletion
        // restores a plain empty lane), so force one long probe chain: 60
        // keys that all hash to group 0 of a 16-group table. They fill
        // groups 0..8 linearly and flag each full group OVERFLOWED; total
        // occupancy (60 of 112 slots) stays below the growth ceiling.
        let mut m = Model::new(16);
        let mut keys = Vec::new();
        let mut i = 0u64;
        while keys.len() < 60 {
            let k = format!("tb-{i}").into_bytes();
            if hash_key(&k) & 15 == 0 {
                keys.push(k);
            }
            i += 1;
        }
        for k in &keys {
            m.insert(k);
        }
        assert_eq!(m.table.stats().resizes, 0, "no growth expected");
        for k in &keys[..55] {
            m.remove(k);
        }
        assert!(
            m.table.stats().resizes >= 1,
            "heavy deletion must trigger a tombstone purge"
        );
        assert!(m.table.stats().tombstones_purged > 0);
        for k in &keys[55..] {
            assert!(m.lookup(k).is_some());
        }
        assert_eq!(m.table.len(), 5);
    }

    #[test]
    fn replace_bumps_entry_incarnation_and_resets_lease_class() {
        let mut m = Model::new(4);
        let off = m.insert(b"k");
        let h = hash_key(b"k");
        m.table.touch(h, off, 5);
        let by_off = m.by_off.clone();
        let (_, meta) = m
            .table
            .lookup_meta(h, |o| by_off.get(&o).is_some_and(|k| k == b"k"))
            .unwrap();
        assert_eq!(meta & 0x00FF, 5, "lease class recorded inline");
        assert_eq!(meta >> 8, 0, "fresh entry: incarnation 0");
        m.by_off.insert(999, b"k".to_vec());
        let by_off = m.by_off.clone();
        let old = m.table.replace(
            h,
            999,
            |o| by_off.get(&o).is_some_and(|k| k == b"k"),
            |o| hash_key(&by_off[&o]),
        );
        assert_eq!(old, Some(off));
        let by_off = m.by_off.clone();
        let (got, meta) = m
            .table
            .lookup_meta(h, |o| by_off.get(&o).is_some_and(|k| k == b"k"))
            .unwrap();
        assert_eq!(got, 999);
        assert_eq!(meta >> 8, 1, "replace must bump the entry incarnation");
        assert_eq!(meta & 0x00FF, 0, "new location: lease class reset");
        assert_eq!(m.table.len(), 1, "replace must not change len");
    }

    #[test]
    fn meta_survives_migration() {
        let mut m = Model::new(1);
        let off = m.insert(b"sticky");
        let h = hash_key(b"sticky");
        m.table.touch(h, off, 7);
        for i in 0..3_000 {
            m.insert(format!("mv-{i}").as_bytes());
        }
        assert!(m.table.stats().resizes >= 1);
        let by_off = m.by_off.clone();
        let (got, meta) = m
            .table
            .lookup_meta(h, |o| by_off.get(&o).is_some_and(|k| k == b"sticky"))
            .unwrap();
        assert_eq!(got, off);
        assert_eq!(meta & 0x00FF, 7, "lease class must ride along migrations");
    }

    #[test]
    fn lookup_batch_matches_scalar_lookups_and_stats() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        let mut a = Model::new(2);
        let mut b = Model::new(2);
        for i in 0..300 {
            a.insert(format!("bk-{i}").as_bytes());
            b.insert(format!("bk-{i}").as_bytes());
        }
        a.table.reset_stats();
        b.table.reset_stats();
        for round in 0..200 {
            let n = rng.gen_range(1..=crate::table::LOOKUP_BATCH);
            let keys: Vec<Vec<u8>> = (0..n)
                .map(|_| format!("bk-{}", rng.gen_range(0..400)).into_bytes())
                .collect();
            let hashes: Vec<u64> = keys.iter().map(|k| hash_key(k)).collect();
            let mut out = [None; crate::table::LOOKUP_BATCH];
            let by_off = a.by_off.clone();
            a.table.lookup_batch(&hashes, &mut out, |i, off| {
                by_off.get(&off).is_some_and(|k| k == &keys[i])
            });
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(out[i], b.lookup(k), "round {round} key {i}");
            }
        }
        assert_eq!(
            a.table.stats(),
            b.table.stats(),
            "batched probing must charge identical work"
        );
    }

    #[test]
    #[should_panic(expected = "batch exceeds LOOKUP_BATCH")]
    fn oversized_lookup_batch_panics() {
        let mut t = PackedTable::new(4);
        let hashes = [0u64; crate::table::LOOKUP_BATCH + 1];
        let mut out = [None; crate::table::LOOKUP_BATCH + 1];
        t.lookup_batch(&hashes, &mut out, |_, _| false);
    }

    #[test]
    fn for_each_visits_every_entry_once_even_mid_resize() {
        let mut m = Model::new(1);
        for i in 0..1_500 {
            m.insert(format!("fe-{i}").as_bytes());
        }
        let mut seen = Vec::new();
        m.table.for_each(|o| seen.push(o));
        seen.sort_unstable();
        let mut expect: Vec<u64> = m.by_off.keys().copied().collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn group_incarnation_changes_on_mutation() {
        let mut m = Model::new(4);
        let h = hash_key(b"inc-key");
        let before = m.table.group_incarnation(h);
        m.insert(b"inc-key");
        assert_ne!(m.table.group_incarnation(h), before);
    }

    #[test]
    fn randomized_against_std_hashmap() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut m = Model::new(2);
        let mut reference: HashMap<Vec<u8>, u64> = HashMap::new();
        for step in 0..30_000 {
            let k = format!("key-{}", rng.gen_range(0..700)).into_bytes();
            match rng.gen_range(0..3) {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = reference.entry(k.clone())
                    {
                        let off = m.insert(&k);
                        e.insert(off);
                    }
                }
                1 => {
                    assert_eq!(m.lookup(&k), reference.get(&k).copied(), "step {step}");
                }
                _ => {
                    assert_eq!(m.remove(&k), reference.remove(&k), "step {step}");
                }
            }
            assert_eq!(m.table.len(), reference.len(), "step {step}");
        }
        for (k, &off) in &reference {
            assert_eq!(m.lookup(k), Some(off));
        }
    }
}
