//! The shard engine: one partition's complete server-side state machine.
//!
//! A [`ShardEngine`] is owned by exactly one shard thread (or one simulated
//! shard actor) and implements the full §4 protocol surface:
//!
//! * out-of-place writes with guardian flips (INSERT / UPDATE / DELETE),
//! * GETs that bump popularity, extend leases (1–64 s scaled by popularity)
//!   and hand back the remote pointer metadata clients cache for RDMA Reads,
//! * lease renewal,
//! * lease-deferred reclamation,
//! * CLOCK eviction when configured as a cache.
//!
//! The engine is deliberately transport-free: the server crate feeds it
//! decoded requests; the replication crate feeds it log records; tests feed
//! it directly.

use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;

use crate::arena::Arena;
use crate::index::{AnyIndex, Index, IndexKind};
use crate::item::{item_words, ItemRef};
use crate::reclaim::ReclaimQueue;
use crate::{hash_key, ArenaStats, TableStats};

/// Whether the store is a reliable store (INSERT collides) or a cache
/// (upserts + eviction under memory pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// INSERT of an existing key fails; no eviction (allocation failure is an
    /// error surfaced to the client).
    Reliable,
    /// INSERT upserts; allocation failure triggers CLOCK eviction.
    Cache,
}

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Arena capacity in 8-byte words.
    pub arena_words: usize,
    /// Expected item count (sizes the index).
    pub expected_items: usize,
    /// Which index structure backs the shard (the `abl_hashtable` A/B axis).
    pub index: IndexKind,
    /// Reliable store or cache.
    pub write_mode: WriteMode,
    /// Minimum lease term granted on a GET (paper: 1 s).
    pub min_lease_ns: u64,
    /// Maximum lease term (paper: 64 s).
    pub max_lease_ns: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            arena_words: 1 << 20, // 8 MiB
            expected_items: 64 << 10,
            index: IndexKind::default(),
            write_mode: WriteMode::Reliable,
            min_lease_ns: 1_000_000_000,
            max_lease_ns: 64_000_000_000,
        }
    }
}

/// Engine errors surfaced to the protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// INSERT collided in reliable mode.
    Exists,
    /// UPDATE/DELETE of an absent key.
    NotFound,
    /// Arena exhausted (after eviction, in cache mode).
    OutOfMemory,
    /// Key exceeds the 16-bit length field.
    KeyTooLong,
    /// Value exceeds the 32-bit length field.
    ValueTooLong,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineError::Exists => "key already exists",
            EngineError::NotFound => "key not found",
            EngineError::OutOfMemory => "arena exhausted",
            EngineError::KeyTooLong => "key too long",
            EngineError::ValueTooLong => "value too long",
        };
        f.write_str(s)
    }
}

impl std::error::Error for EngineError {}

/// Location metadata for an item, convertible to a wire remote pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemInfo {
    /// Word offset of the item in the arena.
    pub off_words: u64,
    /// Bytes a remote RDMA Read must fetch (header..guardian).
    pub read_len: u32,
    /// Absolute lease expiry granted (0 if none).
    pub lease_expiry: u64,
    /// Item version (mod 128): 0 on fresh insert, bumped per replace.
    pub version: u8,
}

/// Result of a server-side GET.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetResult {
    /// The value bytes.
    pub value: Vec<u8>,
    /// Remote-pointer metadata for the client cache.
    pub info: ItemInfo,
}

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub gets: u64,
    pub get_hits: u64,
    pub inserts: u64,
    pub updates: u64,
    pub deletes: u64,
    pub lease_renews: u64,
    /// Range scans served (each continuation quantum counts once).
    pub scans: u64,
    /// Items emitted across all scans.
    pub scan_items: u64,
    pub evictions: u64,
    pub reclaimed_blocks: u64,
    /// Displaced index group arrays freed by the reclamation pump.
    pub retired_index_groups: u64,
    pub oom_events: u64,
}

/// One partition's storage engine. See module docs.
///
/// ```
/// use hydra_store::{EngineConfig, ShardEngine, WriteMode};
///
/// let mut engine = ShardEngine::new(EngineConfig::default());
/// engine.insert(0, b"user:1", b"ada").unwrap();
/// let got = engine.get(10, b"user:1").unwrap();
/// assert_eq!(got.value, b"ada");
/// assert!(got.info.lease_expiry > 10); // GET granted a lease
/// engine.update(20, b"user:1", b"lovelace").unwrap();
/// assert_eq!(engine.get(30, b"user:1").unwrap().value, b"lovelace");
/// ```
pub struct ShardEngine {
    arena: Arena,
    table: AnyIndex,
    reclaim: ReclaimQueue,
    cfg: EngineConfig,
    /// CLOCK ring of (key hash, offset) candidates; entries are validated
    /// against the table on pop, so stale entries (updated/deleted items)
    /// are dropped lazily.
    clock: VecDeque<(u64, u64)>,
    stats: EngineStats,
}

impl ShardEngine {
    /// Builds an engine from `cfg`.
    pub fn new(cfg: EngineConfig) -> Self {
        ShardEngine {
            arena: Arena::new(cfg.arena_words),
            table: AnyIndex::with_capacity(cfg.index, cfg.expected_items),
            reclaim: ReclaimQueue::new(),
            clock: VecDeque::new(),
            cfg,
            stats: EngineStats::default(),
        }
    }

    /// Which index structure this shard runs.
    pub fn index_kind(&self) -> IndexKind {
        self.table.kind()
    }

    /// Whether the index has an incremental resize in progress.
    pub fn index_resizing(&self) -> bool {
        self.table.is_resizing()
    }

    /// Bytes of displaced index group arrays awaiting epoch reclamation.
    pub fn index_retired_bytes(&self) -> usize {
        self.table.retired_bytes()
    }

    /// Bytes held by the index's live structures.
    pub fn index_mem_bytes(&self) -> usize {
        self.table.mem_bytes()
    }

    /// The registered-memory word slice remote readers access.
    #[inline]
    pub fn words(&self) -> &[AtomicU64] {
        self.arena.words()
    }

    /// Shared handle to the arena memory for fabric registration.
    pub fn memory(&self) -> std::sync::Arc<[AtomicU64]> {
        self.arena.memory()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Operation counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Index statistics.
    pub fn table_stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Arena statistics.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Blocks awaiting lease expiry.
    pub fn reclaim_pending(&self) -> usize {
        self.reclaim.len()
    }

    /// High-water mark of (blocks, words) pinned by unexpired leases.
    pub fn reclaim_peak(&self) -> (usize, u64) {
        self.reclaim.peak_pending()
    }

    fn check_lengths(key: &[u8], value: &[u8]) -> Result<(), EngineError> {
        if key.len() > u16::MAX as usize {
            return Err(EngineError::KeyTooLong);
        }
        if value.len() >= (1u64 << 32) as usize {
            return Err(EngineError::ValueTooLong);
        }
        Ok(())
    }

    fn find(&mut self, hash: u64, key: &[u8]) -> Option<u64> {
        let words = self.arena.words();
        self.table
            .lookup(hash, |off| ItemRef { off }.key_eq(words, key))
    }

    /// Links a freshly written item into the index. The rehash callback lets
    /// the packed index re-derive migrated entries' home groups during
    /// incremental resize; it only ever sees offsets of live items (every
    /// engine path removes the index entry before a block can be reclaimed).
    /// Key bytes ride along so ordered indexes (the hybrid skiplist) can
    /// maintain their view; hash-only indexes ignore them.
    fn index_insert(&mut self, hash: u64, key: &[u8], off: u64) {
        let words = self.arena.words();
        self.table.insert_keyed(hash, key, off, |o| {
            ItemRef { off: o }.stored_key_hash(words)
        });
    }

    fn alloc_item(&mut self, now: u64, klen: usize, vlen: usize) -> Result<u64, EngineError> {
        let need = item_words(klen, vlen);
        if let Some(off) = self.arena.alloc(need) {
            return Ok(off);
        }
        // Reclaim anything whose lease has lapsed, then retry.
        self.pump_reclaim(now);
        if let Some(off) = self.arena.alloc(need) {
            return Ok(off);
        }
        // Still stuck: pull free blocks bordering the bump frontier back
        // into headroom so a size class the free lists have never seen can
        // be carved.
        self.arena.compact();
        if let Some(off) = self.arena.alloc(need) {
            return Ok(off);
        }
        if self.cfg.write_mode == WriteMode::Cache {
            // CLOCK eviction: sweep until an allocation fits or the ring is
            // exhausted twice (every entry got its second chance).
            let budget = self.clock.len() * 2;
            for _ in 0..budget {
                let Some((h, off)) = self.clock.pop_front() else {
                    break;
                };
                let words = self.arena.words();
                let current = self.table.lookup(h, |o| o == off).is_some();
                if !current {
                    continue; // stale ring entry
                }
                let item = ItemRef { off };
                if item.clock_ref(words) {
                    item.set_clock_ref(words, false);
                    self.clock.push_back((h, off));
                    continue;
                }
                // Evict: unlink, kill, defer the block to lease expiry. The
                // key is read back from the item so ordered indexes can drop
                // their entry too (cold path; the copy is fine).
                let lease = item.lease(words);
                let total = item.total_words(words);
                let victim_key = item.key(words);
                let removed = self
                    .table
                    .remove_keyed(
                        h,
                        &victim_key,
                        |o| o == off,
                        |o| ItemRef { off: o }.stored_key_hash(words),
                    )
                    .expect("entry verified current");
                debug_assert_eq!(removed, off);
                item.kill(words);
                self.reclaim.push(off, total, lease.max(now));
                self.stats.evictions += 1;
                self.pump_reclaim(now);
                if let Some(off) = self.arena.alloc(need) {
                    return Ok(off);
                }
            }
        }
        self.stats.oom_events += 1;
        Err(EngineError::OutOfMemory)
    }

    /// INSERT. In reliable mode an existing key yields
    /// [`EngineError::Exists`]; in cache mode it upserts.
    pub fn insert(&mut self, now: u64, key: &[u8], value: &[u8]) -> Result<ItemInfo, EngineError> {
        Self::check_lengths(key, value)?;
        let hash = hash_key(key);
        if let Some(old) = self.find(hash, key) {
            return match self.cfg.write_mode {
                WriteMode::Reliable => Err(EngineError::Exists),
                WriteMode::Cache => {
                    let info = self.replace_item(now, hash, key, value, old)?;
                    self.stats.inserts += 1;
                    Ok(info)
                }
            };
        }
        let off = self.alloc_item(now, key.len(), value.len())?;
        let item = ItemRef::write_new(self.arena.words(), off, key, value);
        self.index_insert(hash, key, off);
        self.clock.push_back((hash, off));
        self.stats.inserts += 1;
        Ok(ItemInfo {
            off_words: off,
            read_len: item.read_len(self.arena.words()),
            lease_expiry: 0,
            version: 0,
        })
    }

    /// UPDATE of an existing key (out-of-place). Absent keys:
    /// [`EngineError::NotFound`] in reliable mode, upsert in cache mode.
    pub fn update(&mut self, now: u64, key: &[u8], value: &[u8]) -> Result<ItemInfo, EngineError> {
        Self::check_lengths(key, value)?;
        let hash = hash_key(key);
        match self.find(hash, key) {
            Some(old) => {
                let info = self.replace_item(now, hash, key, value, old)?;
                self.stats.updates += 1;
                Ok(info)
            }
            None => match self.cfg.write_mode {
                WriteMode::Reliable => Err(EngineError::NotFound),
                WriteMode::Cache => {
                    let off = self.alloc_item(now, key.len(), value.len())?;
                    let item = ItemRef::write_new(self.arena.words(), off, key, value);
                    self.index_insert(hash, key, off);
                    self.clock.push_back((hash, off));
                    self.stats.updates += 1;
                    Ok(ItemInfo {
                        off_words: off,
                        read_len: item.read_len(self.arena.words()),
                        lease_expiry: 0,
                        version: 0,
                    })
                }
            },
        }
    }

    /// Upsert regardless of mode — the replication applier uses this for
    /// [`hydra_wire::LogOp::Put`] records.
    pub fn put(&mut self, now: u64, key: &[u8], value: &[u8]) -> Result<ItemInfo, EngineError> {
        Self::check_lengths(key, value)?;
        let hash = hash_key(key);
        match self.find(hash, key) {
            Some(old) => self.replace_item(now, hash, key, value, old),
            None => {
                let off = self.alloc_item(now, key.len(), value.len())?;
                let item = ItemRef::write_new(self.arena.words(), off, key, value);
                self.index_insert(hash, key, off);
                self.clock.push_back((hash, off));
                Ok(ItemInfo {
                    off_words: off,
                    read_len: item.read_len(self.arena.words()),
                    lease_expiry: 0,
                    version: 0,
                })
            }
        }
    }

    /// The §4.2.3 update path: allocate the new item first, flip the old
    /// guardian atomically, swap the index link, defer the old block.
    fn replace_item(
        &mut self,
        now: u64,
        hash: u64,
        key: &[u8],
        value: &[u8],
        old_off: u64,
    ) -> Result<ItemInfo, EngineError> {
        let new_off = self.alloc_item(now, key.len(), value.len())?;
        let old_item = ItemRef { off: old_off };
        // Bump the 7-bit item version: a client (or replica exporter) holding
        // the old version observes the mismatch even before it sees the dead
        // guardian.
        let version = old_item.version(self.arena.words()).wrapping_add(1) & 0x7F;
        let new_item =
            ItemRef::write_new_versioned(self.arena.words(), new_off, key, value, version);
        let read_len = new_item.read_len(self.arena.words());
        let words = self.arena.words();
        // Carry popularity across versions so lease scaling survives updates.
        let pop = old_item.popularity(words);
        for _ in 0..pop {
            new_item.bump_popularity(words);
        }
        let old_words = old_item.total_words(words);
        let old_lease = old_item.lease(words);
        old_item.kill(words);
        let replaced = self.table.replace_keyed(
            hash,
            key,
            new_off,
            |off| off == old_off,
            |o| ItemRef { off: o }.stored_key_hash(words),
        );
        debug_assert_eq!(replaced, Some(old_off));
        self.clock.push_back((hash, new_off));
        self.reclaim.push(old_off, old_words, old_lease.max(now));
        Ok(ItemInfo {
            off_words: new_off,
            read_len,
            lease_expiry: 0,
            version,
        })
    }

    /// Lease tier of an item with popularity `pop`: `floor(log2(pop))`
    /// clamped to 0..=6, i.e. the seven doublings of the §4.2.3 1–64 s
    /// range. This is the value the packed index caches inline in the
    /// bucket's meta word ([`crate::PackedTable::touch`]).
    fn lease_class(pop: u8) -> u8 {
        (63 - (pop as u64).max(1).leading_zeros() as u64).min(6) as u8
    }

    /// Lease term granted to an item with popularity `pop`: doubles per
    /// popularity power-of-two, clamped to `[min_lease, max_lease]` (§4.2.3's
    /// 1–64 s range).
    fn lease_term(&self, pop: u8) -> u64 {
        let term = self
            .cfg
            .min_lease_ns
            .saturating_shl(Self::lease_class(pop) as u32);
        term.clamp(self.cfg.min_lease_ns, self.cfg.max_lease_ns)
    }

    /// Server-side GET: returns the value plus the remote-pointer metadata
    /// and extends the item's lease.
    pub fn get(&mut self, now: u64, key: &[u8]) -> Option<GetResult> {
        let mut value = Vec::new();
        let info = self.get_into(now, key, &mut value)?;
        Some(GetResult { value, info })
    }

    /// [`Self::get`] without the value allocation: clears `out` and appends
    /// the value bytes into it. With a reused scratch buffer this is the
    /// zero-allocation GET the serving hot path runs per request.
    pub fn get_into(&mut self, now: u64, key: &[u8], out: &mut Vec<u8>) -> Option<ItemInfo> {
        out.clear();
        self.stats.gets += 1;
        let hash = hash_key(key);
        let off = self.find(hash, key)?;
        self.stats.get_hits += 1;
        let words = self.arena.words();
        let item = ItemRef { off };
        item.bump_popularity(words);
        item.set_clock_ref(words, true);
        let pop = item.popularity(words);
        let expiry = now + self.lease_term(pop);
        item.extend_lease(words, expiry);
        item.value_into(words, out);
        // Mirror the granted lease tier into the bucket line while it is
        // still cache-hot (no-op for indexes without inline metadata).
        self.table.touch(hash, off, Self::lease_class(pop));
        Some(ItemInfo {
            off_words: off,
            read_len: item.read_len(words),
            lease_expiry: item.lease(words),
            version: item.version(words),
        })
    }

    /// Non-mutating lookup: resolves `key` to its current location without
    /// bumping popularity, extending the lease, or touching CLOCK state.
    /// The primary uses this to export *replica* pointers from a replica's
    /// engine — the replica must not record reads it never served, and the
    /// replica item's own lease state stays untouched (the guardian word
    /// still validates every remote fetch).
    pub fn peek(&mut self, key: &[u8]) -> Option<ItemInfo> {
        let hash = hash_key(key);
        let off = self.find(hash, key)?;
        let words = self.arena.words();
        let item = ItemRef { off };
        Some(ItemInfo {
            off_words: off,
            read_len: item.read_len(words),
            lease_expiry: item.lease(words),
            version: item.version(words),
        })
    }

    /// Extends `key`'s lease to at least `expiry` without bumping popularity
    /// or CLOCK state. The primary uses this to pin a *replica* item for the
    /// duration of a lease it granted on the replica's behalf when exporting
    /// the replica's remote pointer: reclamation on the replica then honours
    /// the exported lease exactly as it honours locally granted ones.
    /// Returns `false` when the key is absent.
    pub fn pin_lease(&mut self, key: &[u8], expiry: u64) -> bool {
        let hash = hash_key(key);
        let Some(off) = self.find(hash, key) else {
            return false;
        };
        ItemRef { off }.extend_lease(self.arena.words(), expiry);
        true
    }

    /// Batched server-side GET over a run of keys. Index probes are
    /// interleaved via [`CompactTable::lookup_batch`] — every key's bucket
    /// cache line is touched before any arena dereference, the
    /// software-prefetch shape — then per-key side effects (popularity bump,
    /// CLOCK reference, lease extension) and value extraction run strictly
    /// in key order. GET lookups never mutate the index, so the observable
    /// outcome is byte-identical to calling [`get_into`](Self::get_into)
    /// once per key in order; only the memory-access schedule differs.
    ///
    /// `emit` fires once per key, in order, with the key index, the item
    /// info (`None` on a miss) and the value bytes staged in `scratch`.
    pub fn get_batch_into(
        &mut self,
        now: u64,
        keys: &[&[u8]],
        scratch: &mut Vec<u8>,
        mut emit: impl FnMut(usize, Option<ItemInfo>, &[u8]),
    ) {
        use crate::table::LOOKUP_BATCH;
        for chunk_start in (0..keys.len()).step_by(LOOKUP_BATCH) {
            let chunk = &keys[chunk_start..(chunk_start + LOOKUP_BATCH).min(keys.len())];
            let mut hashes = [0u64; LOOKUP_BATCH];
            for (i, k) in chunk.iter().enumerate() {
                hashes[i] = hash_key(k);
            }
            let mut offs = [None; LOOKUP_BATCH];
            {
                let words = self.arena.words();
                self.table
                    .lookup_batch(&hashes[..chunk.len()], &mut offs, |i, off| {
                        ItemRef { off }.key_eq(words, chunk[i])
                    });
            }
            for (i, &slot) in offs.iter().enumerate().take(chunk.len()) {
                self.stats.gets += 1;
                scratch.clear();
                let Some(off) = slot else {
                    emit(chunk_start + i, None, scratch);
                    continue;
                };
                self.stats.get_hits += 1;
                let words = self.arena.words();
                let item = ItemRef { off };
                item.bump_popularity(words);
                item.set_clock_ref(words, true);
                let pop = item.popularity(words);
                let expiry = now + self.lease_term(pop);
                item.extend_lease(words, expiry);
                item.value_into(words, scratch);
                self.table.touch(hashes[i], off, Self::lease_class(pop));
                emit(
                    chunk_start + i,
                    Some(ItemInfo {
                        off_words: off,
                        read_len: item.read_len(words),
                        lease_expiry: item.lease(words),
                        version: item.version(words),
                    }),
                    scratch,
                );
            }
        }
    }

    /// DELETE. Flips the guardian and defers the block.
    pub fn delete(&mut self, now: u64, key: &[u8]) -> Result<(), EngineError> {
        let hash = hash_key(key);
        let Some(off) = self.find(hash, key) else {
            return Err(EngineError::NotFound);
        };
        // Advance the reclamation epoch from the delete path too — a
        // delete-only workload must drain expired blocks and displaced index
        // groups without waiting for a put. Pumping *before* pushing leaves
        // the block killed below for a later epoch, as the lease protocol
        // requires.
        self.pump_reclaim(now);
        let words = self.arena.words();
        let item = ItemRef { off };
        let total = item.total_words(words);
        let lease = item.lease(words);
        self.table.remove_keyed(
            hash,
            key,
            |o| o == off,
            |o| ItemRef { off: o }.stored_key_hash(words),
        );
        item.kill(words);
        self.reclaim.push(off, total, lease.max(now));
        self.stats.deletes += 1;
        Ok(())
    }

    /// Extends the lease of `key` (client-initiated renewal). Returns the
    /// new expiry, or `None` when the key is gone — at which point the
    /// server stops extending, per §4.2.3.
    pub fn renew_lease(&mut self, now: u64, key: &[u8]) -> Option<u64> {
        self.stats.lease_renews += 1;
        let hash = hash_key(key);
        let off = self.find(hash, key)?;
        let words = self.arena.words();
        let item = ItemRef { off };
        let pop = item.popularity(words);
        let expiry = now + self.lease_term(pop);
        item.extend_lease(words, expiry);
        self.table.touch(hash, off, Self::lease_class(pop));
        Some(item.lease(words))
    }

    /// Frees every dead block whose lease has expired. The paper runs this on
    /// a background thread; callers pump it from the shard loop or a periodic
    /// simulator event. Returns blocks freed.
    pub fn pump_reclaim(&mut self, now: u64) -> usize {
        let arena = &mut self.arena;
        let n = self
            .reclaim
            .reclaim(now, |off, words| arena.free(off, words));
        self.stats.reclaimed_blocks += n as u64;
        // Displaced index group arrays ride the same epoch: the shard thread
        // is the only index reader (remote GETs bypass it via one-sided
        // reads), so a fully drained old half has no remaining readers by
        // the time any pump runs.
        self.stats.retired_index_groups += self.table.reclaim_retired() as u64;
        n
    }

    /// Earliest pending reclamation deadline (schedules the next GC event).
    ///
    /// Displaced index halves count as immediately-due work: once a resize
    /// finishes they are reclaimable on the next pump, and a read-only
    /// workload would otherwise pin them forever (no put/delete ever runs
    /// the pump again).
    pub fn next_reclaim_at(&self) -> Option<u64> {
        if self.table.retired_bytes() > 0 && !self.table.is_resizing() {
            return Some(0);
        }
        self.reclaim.next_expiry()
    }

    /// Visits `(hash-agnostic) offsets` of all live items — used by failover
    /// migration to stream a partition to a new owner.
    pub fn for_each_item(&self, mut f: impl FnMut(Vec<u8>, Vec<u8>)) {
        let words = self.arena.words();
        self.table.for_each(|off| {
            let item = ItemRef { off };
            f(item.key(words), item.value(words));
        });
    }

    /// Whether the shard's index serves ordered scans natively (hybrid
    /// index) or must emulate them with a full sort.
    pub fn scan_is_native(&self) -> bool {
        self.table.is_ordered()
    }

    /// Ordered range scan from the first key `>= start`. `emit` receives
    /// each `(key, value)` in key order (the value staged in `scratch`) and
    /// returns `false` to stop — the server uses this to cap a scan quantum.
    /// Returns `true` when the keyspace was exhausted, `false` when `emit`
    /// stopped the walk (i.e. more items remain past the last emitted key).
    ///
    /// On a hybrid shard this walks the skiplist's level 0 and allocates
    /// nothing after warmup. On hash-only shards it falls back to dumping
    /// and sorting the whole partition per call — the ablation baseline the
    /// `perf_scan` bench quantifies; correct, but O(n log n) per scan.
    pub fn scan_into(
        &mut self,
        start: &[u8],
        scratch: &mut Vec<u8>,
        mut emit: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> bool {
        self.stats.scans += 1;
        if self.table.is_ordered() {
            let words = self.arena.words();
            let stats = &mut self.stats;
            return self.table.scan_from(start, |key, off| {
                stats.scan_items += 1;
                scratch.clear();
                ItemRef { off }.value_into(words, scratch);
                emit(key, scratch)
            });
        }
        // Emulated ordered scan: full dump + sort.
        let words = self.arena.words();
        let mut items: Vec<(Vec<u8>, u64)> = Vec::with_capacity(self.table.len());
        self.table.for_each(|off| {
            items.push((ItemRef { off }.key(words), off));
        });
        items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let begin = items.partition_point(|(k, _)| k.as_slice() < start);
        for (k, off) in &items[begin..] {
            self.stats.scan_items += 1;
            scratch.clear();
            ItemRef { off: *off }.value_into(words, scratch);
            if !emit(k, scratch) {
                return false;
            }
        }
        true
    }
}

/// `u64::checked_shl` that saturates instead of wrapping.
trait SaturatingShl {
    fn saturating_shl(self, n: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, n: u32) -> u64 {
        self.checked_shl(n).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::{FetchedItem, ItemError};

    fn cfg_small(mode: WriteMode) -> EngineConfig {
        EngineConfig {
            arena_words: 4096,
            expected_items: 256,
            index: IndexKind::Packed,
            write_mode: mode,
            min_lease_ns: 1_000,
            max_lease_ns: 64_000,
        }
    }

    fn rdma_fetch(engine: &ShardEngine, info: ItemInfo) -> Vec<u8> {
        // Simulate a one-sided read: copy read_len bytes from the arena.
        let words = engine.words();
        let mut blob = Vec::with_capacity(info.read_len as usize);
        for w in 0..(info.read_len as usize) / 8 {
            blob.extend_from_slice(
                &words[info.off_words as usize + w]
                    .load(std::sync::atomic::Ordering::Relaxed)
                    .to_le_bytes(),
            );
        }
        blob
    }

    #[test]
    fn get_batch_into_matches_sequential_get_into() {
        // Twin engines with identical contents; batch one, loop the other.
        let mut batch = ShardEngine::new(cfg_small(WriteMode::Reliable));
        let mut seq = ShardEngine::new(cfg_small(WriteMode::Reliable));
        let keys: Vec<Vec<u8>> = (0..40).map(|i| format!("bk{i}").into_bytes()).collect();
        for (i, k) in keys.iter().enumerate() {
            let v = format!("value-{i}").into_bytes();
            batch.insert(0, k, &v).unwrap();
            seq.insert(0, k, &v).unwrap();
        }
        // A run longer than LOOKUP_BATCH with duplicates and misses mixed in.
        let run: Vec<&[u8]> = (0..40)
            .map(|i| match i % 5 {
                0 => keys[i % keys.len()].as_slice(),
                1 => keys[(i * 7) % keys.len()].as_slice(),
                2 => b"missing".as_slice(),
                _ => keys[0].as_slice(), // hot duplicate: popularity order matters
            })
            .collect();
        let mut batch_out: Vec<(usize, Option<ItemInfo>, Vec<u8>)> = Vec::new();
        let mut scratch = Vec::new();
        batch.get_batch_into(500, &run, &mut scratch, |i, info, val| {
            batch_out.push((i, info, val.to_vec()));
        });
        let mut seq_scratch = Vec::new();
        for (i, k) in run.iter().enumerate() {
            let info = seq.get_into(500, k, &mut seq_scratch);
            let (bi, binfo, bval) = &batch_out[i];
            assert_eq!(*bi, i);
            assert_eq!(*binfo, info, "key {i}");
            assert_eq!(bval, &seq_scratch, "key {i}");
        }
        assert_eq!(batch.stats(), seq.stats());
        assert_eq!(batch.table_stats(), seq.table_stats());
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k1", b"v1").unwrap();
        let got = e.get(10, b"k1").unwrap();
        assert_eq!(got.value, b"v1");
        assert!(got.info.lease_expiry > 10);
        assert_eq!(e.get(10, b"missing"), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn reliable_insert_collision_fails() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v").unwrap();
        assert_eq!(e.insert(1, b"k", b"v2").unwrap_err(), EngineError::Exists);
        assert_eq!(e.get(2, b"k").unwrap().value, b"v");
    }

    #[test]
    fn cache_insert_upserts() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Cache));
        e.insert(0, b"k", b"v1").unwrap();
        e.insert(1, b"k", b"v2").unwrap();
        assert_eq!(e.get(2, b"k").unwrap().value, b"v2");
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn update_is_out_of_place_and_kills_old_item() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        let i1 = e.insert(0, b"k", b"old-value").unwrap();
        let blob_before = rdma_fetch(&e, i1);
        assert!(FetchedItem::parse(&blob_before, b"k").is_ok());

        let i2 = e.update(5, b"k", b"new-value").unwrap();
        assert_ne!(i1.off_words, i2.off_words, "update must be out-of-place");
        // A stale remote pointer now observes a dead guardian.
        let blob_after = rdma_fetch(&e, i1);
        assert_eq!(
            FetchedItem::parse(&blob_after, b"k").unwrap_err(),
            ItemError::Stale
        );
        // The fresh pointer works.
        let blob_new = rdma_fetch(&e, i2);
        assert_eq!(
            FetchedItem::parse(&blob_new, b"k").unwrap().value,
            b"new-value"
        );
    }

    #[test]
    fn update_missing_key() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        assert_eq!(
            e.update(0, b"nope", b"v").unwrap_err(),
            EngineError::NotFound
        );
        let mut e = ShardEngine::new(cfg_small(WriteMode::Cache));
        e.update(0, b"nope", b"v").unwrap();
        assert_eq!(e.get(1, b"nope").unwrap().value, b"v");
    }

    #[test]
    fn delete_then_get_misses() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        let info = e.insert(0, b"k", b"v").unwrap();
        e.delete(1, b"k").unwrap();
        assert_eq!(e.get(2, b"k"), None);
        assert_eq!(e.delete(3, b"k").unwrap_err(), EngineError::NotFound);
        let blob = rdma_fetch(&e, info);
        assert_eq!(
            FetchedItem::parse(&blob, b"k").unwrap_err(),
            ItemError::Stale
        );
    }

    #[test]
    fn version_bumps_on_replace_and_is_deterministic_per_op_sequence() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        let i0 = e.insert(0, b"vk", b"v0").unwrap();
        assert_eq!(i0.version, 0);
        let i1 = e.update(1, b"vk", b"v1").unwrap();
        assert_eq!(i1.version, 1);
        let i2 = e.put(2, b"vk", b"v2").unwrap();
        assert_eq!(i2.version, 2);
        assert_eq!(e.get(3, b"vk").unwrap().info.version, 2);
        assert_eq!(e.peek(b"vk").unwrap().version, 2);
        // Delete + reinsert restarts at 0: the guardian flip (not the
        // version) is what invalidates pointers across a delete.
        e.delete(4, b"vk").unwrap();
        assert_eq!(e.insert(5, b"vk", b"v3").unwrap().version, 0);
        // A second engine fed the same per-key op sequence agrees — the
        // replica-export version match depends on this determinism.
        let mut r = ShardEngine::new(cfg_small(WriteMode::Reliable));
        r.put(0, b"vk", b"v0").unwrap();
        r.put(1, b"vk", b"v1").unwrap();
        r.put(2, b"vk", b"v2").unwrap();
        r.delete(3, b"vk").unwrap();
        r.put(4, b"vk", b"v3").unwrap();
        assert_eq!(r.peek(b"vk").unwrap().version, 0);
    }

    #[test]
    fn pin_lease_defers_reclaim_without_touching_popularity() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"pin", b"v").unwrap();
        let pop_lease_before = e.get(10, b"pin").unwrap().info.lease_expiry;
        assert!(e.pin_lease(b"pin", 50_000));
        // pin_lease extends but never shortens; popularity (and thus the
        // server-granted term) is unchanged by the pin.
        let after = e.get(20, b"pin").unwrap().info;
        assert_eq!(after.lease_expiry, 50_000);
        assert!(pop_lease_before < 50_000);
        e.delete(100, b"pin").unwrap();
        assert_eq!(e.pump_reclaim(49_999), 0, "pinned lease must defer reuse");
        assert_eq!(e.pump_reclaim(50_000), 1);
        assert!(!e.pin_lease(b"pin", 60_000), "absent key: no pin");
    }

    #[test]
    fn memory_reuse_waits_for_lease_expiry() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v").unwrap();
        // GET at t=10 grants a lease (min 1000ns -> expiry 1010).
        let lease = e.get(10, b"k").unwrap().info.lease_expiry;
        assert_eq!(lease, 1_010);
        e.delete(20, b"k").unwrap();
        assert_eq!(e.reclaim_pending(), 1);
        assert_eq!(e.pump_reclaim(lease - 1), 0, "must not free during lease");
        assert_eq!(e.pump_reclaim(lease), 1, "frees once lease lapses");
        assert_eq!(e.stats().reclaimed_blocks, 1);
    }

    #[test]
    fn unleased_items_reclaim_immediately_after_now() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v").unwrap();
        e.delete(5, b"k").unwrap(); // never leased
        assert_eq!(e.pump_reclaim(5), 1);
    }

    #[test]
    fn lease_term_scales_with_popularity() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"hot", b"v").unwrap();
        let first = e.get(0, b"hot").unwrap().info.lease_expiry;
        assert_eq!(first, 1_000, "popularity 1 -> min lease");
        for _ in 0..200 {
            e.get(0, b"hot").unwrap();
        }
        let later = e.get(0, b"hot").unwrap().info.lease_expiry;
        assert_eq!(later, 64_000, "popularity saturated -> max lease");
    }

    #[test]
    fn renew_lease_extends_and_stops_after_delete() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v").unwrap();
        let l1 = e.renew_lease(100, b"k").unwrap();
        assert!(l1 >= 1_100);
        e.delete(200, b"k").unwrap();
        assert_eq!(e.renew_lease(300, b"k"), None, "no renewal for dead keys");
    }

    #[test]
    fn cache_mode_evicts_under_pressure() {
        let cfg = EngineConfig {
            arena_words: 512,
            expected_items: 64,
            index: IndexKind::Packed,
            write_mode: WriteMode::Cache,
            min_lease_ns: 0,
            max_lease_ns: 0,
        };
        let mut e = ShardEngine::new(cfg);
        // Each item: 1 + 1 + 4 + 2 = 8 words; arena fits 64.
        for i in 0..200 {
            let key = format!("key{i:04}");
            e.insert(i, key.as_bytes(), &[0xAB; 32])
                .unwrap_or_else(|err| panic!("insert {i}: {err}"));
        }
        assert!(e.stats().evictions > 0, "evictions must have occurred");
        assert!(e.len() <= 64);
        // Recently inserted keys survive.
        assert!(e.get(1_000, b"key0199").is_some());
    }

    #[test]
    fn reliable_mode_oom_is_an_error() {
        let cfg = EngineConfig {
            arena_words: 64,
            expected_items: 8,
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 1_000,
            max_lease_ns: 64_000,
        };
        let mut e = ShardEngine::new(cfg);
        let mut failed = false;
        for i in 0..100 {
            if e.insert(i, format!("k{i}").as_bytes(), &[0u8; 16]).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "reliable mode must surface OOM");
        assert!(e.stats().oom_events > 0);
    }

    #[test]
    fn clock_second_chance_protects_hot_items() {
        let cfg = EngineConfig {
            arena_words: 512,
            expected_items: 64,
            index: IndexKind::Packed,
            write_mode: WriteMode::Cache,
            min_lease_ns: 0,
            max_lease_ns: 0,
        };
        let mut e = ShardEngine::new(cfg);
        e.insert(0, b"hot-key!", &[1; 32]).unwrap();
        for i in 0..500 {
            e.get(i, b"hot-key!"); // keeps the reference bit set
            let key = format!("cold{i:04}");
            let _ = e.insert(i, key.as_bytes(), &[0; 32]);
        }
        assert!(
            e.get(1_000, b"hot-key!").is_some(),
            "hot item must survive CLOCK sweeps"
        );
    }

    #[test]
    fn popularity_survives_update() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v1").unwrap();
        for _ in 0..200 {
            e.get(0, b"k").unwrap();
        }
        e.update(1, b"k", b"v2").unwrap();
        // Popularity carried over -> still max lease.
        let lease = e.get(2, b"k").unwrap().info.lease_expiry;
        assert_eq!(lease, 64_002);
    }

    #[test]
    fn for_each_item_enumerates_live_state() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"a", b"1").unwrap();
        e.insert(0, b"b", b"2").unwrap();
        e.insert(0, b"c", b"3").unwrap();
        e.delete(1, b"b").unwrap();
        let mut seen = Vec::new();
        e.for_each_item(|k, v| seen.push((k, v)));
        seen.sort();
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"c".to_vec(), b"3".to_vec())
            ]
        );
    }

    #[test]
    fn stats_count_operations() {
        let mut e = ShardEngine::new(cfg_small(WriteMode::Reliable));
        e.insert(0, b"k", b"v").unwrap();
        e.get(1, b"k").unwrap();
        e.get(1, b"missing");
        e.update(2, b"k", b"v2").unwrap();
        e.delete(3, b"k").unwrap();
        let s = e.stats();
        assert_eq!(s.inserts, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.get_hits, 1);
        assert_eq!(s.updates, 1);
        assert_eq!(s.deletes, 1);
    }

    #[test]
    fn heavy_churn_with_reclamation_is_stable() {
        let cfg = EngineConfig {
            arena_words: 8192,
            expected_items: 128,
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 100,
            max_lease_ns: 6_400,
        };
        let mut e = ShardEngine::new(cfg);
        for i in 0..64 {
            e.insert(0, format!("key{i:03}").as_bytes(), &[0; 24])
                .unwrap();
        }
        for round in 0u64..2_000 {
            let now = round * 10;
            let k = format!("key{:03}", round % 64);
            e.get(now, k.as_bytes()).unwrap();
            e.update(now, k.as_bytes(), &[round as u8; 24]).unwrap();
            e.pump_reclaim(now);
        }
        // All old versions eventually reclaimed.
        e.pump_reclaim(u64::MAX);
        assert_eq!(e.reclaim_pending(), 0);
        let a = e.arena_stats();
        assert_eq!(a.live_words, 64 * item_words(6, 24) as u64);
    }

    #[test]
    fn delete_only_workload_drains_reclaim_and_retired_groups() {
        // Regression: the reclamation epoch used to advance only from put
        // paths, so a delete-only phase accumulated expired blocks (and,
        // with the packed index, retired group arrays) unboundedly.
        let cfg = EngineConfig {
            arena_words: 1 << 16,
            expected_items: 16, // tiny: loading 2k items forces many resizes
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 50,
            max_lease_ns: 3_200,
        };
        let mut e = ShardEngine::new(cfg);
        for i in 0..2_000u64 {
            e.insert(i, format!("dk{i:05}").as_bytes(), &[7; 16])
                .unwrap();
        }
        // Deletes only from here on; leases are short, so blocks keep
        // expiring as virtual time advances.
        let mut peak_pending = 0;
        for i in 0..2_000u64 {
            let now = 1_000_000 + i * 100; // far past every grant
            e.delete(now, format!("dk{i:05}").as_bytes()).unwrap();
            peak_pending = peak_pending.max(e.reclaim_pending());
            assert!(
                e.index_retired_bytes() == 0 || e.index_resizing(),
                "retired halves must drain from the delete path"
            );
        }
        assert!(
            peak_pending <= 2,
            "delete-only loop must not grow the reclaim queue: {peak_pending}"
        );
        assert!(e.stats().reclaimed_blocks >= 1_999);
        assert!(
            e.stats().retired_index_groups >= 1,
            "growth during load must have retired old halves"
        );
    }

    #[test]
    fn read_only_workload_reports_retired_halves_as_due_reclaim() {
        // Regression: `next_reclaim_at` used to consult only the lease
        // queue, so when an insert-only load phase finished a resize the
        // displaced old half stayed pinned for as long as the workload was
        // read-only — no put/delete ever pumped again, and the scheduler
        // had no deadline to arm. Retired halves must surface as
        // immediately-due work.
        let cfg = EngineConfig {
            arena_words: 1 << 16,
            expected_items: 16, // tiny: loading forces resizes quickly
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 50,
            max_lease_ns: 3_200,
        };
        let mut e = ShardEngine::new(cfg);
        // Load until at least one resize has fully completed with its old
        // half retired but not yet reclaimed (inserts don't pump unless the
        // arena fills).
        let mut i = 0u64;
        while e.index_retired_bytes() == 0 || e.index_resizing() {
            e.insert(i, format!("ro{i:05}").as_bytes(), &[9; 16])
                .unwrap();
            i += 1;
            assert!(i < 100_000, "never observed a completed resize");
        }
        assert_eq!(
            e.next_reclaim_at(),
            Some(0),
            "retired halves must register as due reclamation"
        );
        // Read-only from here: the scheduled pump (driven by GET traffic in
        // the server) drains the retired half without any mutation.
        let mut scratch = Vec::new();
        e.get_into(i, b"ro00000", &mut scratch).unwrap();
        e.pump_reclaim(i);
        assert_eq!(e.index_retired_bytes(), 0, "pump must free retired halves");
        assert!(e.stats().retired_index_groups >= 1);
    }

    #[test]
    fn item_addresses_are_stable_across_index_resizes() {
        // The address-stability contract behind client-cached remote
        // pointers: incremental resize moves index *entries*, never items.
        let cfg = EngineConfig {
            arena_words: 1 << 16,
            expected_items: 16,
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 1_000,
            max_lease_ns: 64_000,
        };
        let mut e = ShardEngine::new(cfg);
        let info = e.insert(0, b"pinned-key", b"pinned-value!!").unwrap();
        // Force multiple incremental resizes with unrelated inserts.
        for i in 0..2_000u64 {
            e.insert(i, format!("fill{i:05}").as_bytes(), &[0; 8])
                .unwrap();
        }
        assert!(e.table_stats().resizes >= 2, "resizes must have happened");
        // The cached offset still serves a valid one-sided read...
        let blob = rdma_fetch(&e, info);
        let f = FetchedItem::parse(&blob, b"pinned-key").unwrap();
        assert_eq!(f.value, b"pinned-value!!");
        // ...and the index agrees the item never moved.
        let got = e.get(10, b"pinned-key").unwrap();
        assert_eq!(got.info.off_words, info.off_words);
    }

    #[test]
    fn engines_agree_across_index_kinds() {
        // Cheap cross-kind smoke (the full randomized equivalence lives in
        // tests/tests/index_equivalence.rs): drive the same script through
        // all four index structures and compare observable results.
        let mk = |kind| {
            ShardEngine::new(EngineConfig {
                arena_words: 1 << 14,
                expected_items: 32,
                index: kind,
                write_mode: WriteMode::Reliable,
                min_lease_ns: 1_000,
                max_lease_ns: 64_000,
            })
        };
        let mut engines = [
            mk(IndexKind::Chained),
            mk(IndexKind::Compact),
            mk(IndexKind::Packed),
            mk(IndexKind::Hybrid),
        ];
        for i in 0..600u64 {
            let k = format!("ek{}", i % 200);
            for e in &mut engines {
                match i % 4 {
                    0 => {
                        let _ = e.insert(i, k.as_bytes(), &[i as u8; 12]);
                    }
                    1 => {
                        let _ = e.update(i, k.as_bytes(), &[i as u8; 20]);
                    }
                    2 => {
                        let _ = e.delete(i, k.as_bytes());
                    }
                    _ => {}
                }
            }
            let gets: Vec<Option<Vec<u8>>> = engines
                .iter_mut()
                .map(|e| e.get(i, k.as_bytes()).map(|g| g.value))
                .collect();
            assert_eq!(gets[0], gets[1], "step {i}");
            assert_eq!(gets[1], gets[2], "step {i}");
            assert_eq!(gets[2], gets[3], "step {i}");
        }
        assert_eq!(engines[0].len(), engines[2].len());
        assert_eq!(engines[2].len(), engines[3].len());
    }

    fn scan_all(e: &mut ShardEngine, start: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let exhausted = e.scan_into(start, &mut scratch, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        });
        assert!(exhausted);
        out
    }

    #[test]
    fn hybrid_scan_matches_emulated_scan_and_mutations() {
        let mk = |kind| {
            ShardEngine::new(EngineConfig {
                arena_words: 1 << 14,
                expected_items: 16, // tiny: forces hash-side resizes mid-run
                index: kind,
                write_mode: WriteMode::Reliable,
                min_lease_ns: 1_000,
                max_lease_ns: 64_000,
            })
        };
        let mut hybrid = mk(IndexKind::Hybrid);
        let mut packed = mk(IndexKind::Packed);
        for i in 0..400u64 {
            let k = format!("sk{:04}", (i * 37) % 256);
            match i % 5 {
                0..=2 => {
                    let _ = hybrid.put(i, k.as_bytes(), &[i as u8; 10]);
                    let _ = packed.put(i, k.as_bytes(), &[i as u8; 10]);
                }
                3 => {
                    let _ = hybrid.delete(i, k.as_bytes());
                    let _ = packed.delete(i, k.as_bytes());
                }
                _ => {
                    hybrid.pump_reclaim(i);
                    packed.pump_reclaim(i);
                }
            }
        }
        assert!(hybrid.scan_is_native());
        assert!(!packed.scan_is_native());
        // Full-keyspace and mid-keyspace scans agree exactly.
        for start in [b"".as_slice(), b"sk0100", b"sk0255x", b"zzz"] {
            assert_eq!(scan_all(&mut hybrid, start), scan_all(&mut packed, start));
        }
        // Early-stop reports "more remain" on both paths.
        let mut scratch = Vec::new();
        let mut n = 0;
        assert!(!hybrid.scan_into(b"", &mut scratch, |_, _| {
            n += 1;
            n < 3
        }));
        let mut m = 0;
        assert!(!packed.scan_into(b"", &mut scratch, |_, _| {
            m += 1;
            m < 3
        }));
        assert!(hybrid.stats().scans >= 5 && hybrid.stats().scan_items > 0);
    }
}
