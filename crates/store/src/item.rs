//! Item layout and the guardian-word consistency protocol (§4.2.3).
//!
//! Every key-value pair is laid out in registered memory as:
//!
//! ```text
//! word 0              : header  [klen:16][vlen:32][pop:8][clock:1][version:7]
//! words 1 .. 1+kw     : key bytes   (kw = ceil(klen/8))
//! next vw words       : value bytes (vw = ceil(vlen/8))
//! next word           : guardian  (GUARD_VALID | GUARD_DEAD)
//! last word           : lease     (absolute expiry, virtual ns)
//! ```
//!
//! Items are **immutable after publication** except for the guardian, lease,
//! popularity and flags fields. Updates are out-of-place: the shard allocates
//! a fresh item and atomically flips the old guardian to `GUARD_DEAD`. A
//! remote RDMA Read always fetches through the guardian word, so a client can
//! detect that it retrieved a superseded item and fall back to the message
//! path. The lease word delays physical reclamation (see
//! [`crate::reclaim`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Guardian value of a live item.
pub const GUARD_VALID: u64 = 0xA11C_E5A1_1D00_0001;
/// Guardian value of a deleted/superseded item.
pub const GUARD_DEAD: u64 = 0xDEAD_17E4_0000_0000;

/// Errors from item parsing/validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemError {
    /// The guardian word says the item was deleted or superseded.
    Stale,
    /// The bytes do not parse as an item for the expected key (memory was
    /// reclaimed and reused, or the fetch raced an in-flight write).
    Corrupt,
    /// The supplied buffer is shorter than the item claims to be.
    Truncated,
}

const KLEN_BITS: u64 = 16;
const VLEN_BITS: u64 = 32;
const KLEN_MASK: u64 = (1 << KLEN_BITS) - 1;
const VLEN_MASK: u64 = (1 << VLEN_BITS) - 1;
const POP_SHIFT: u64 = KLEN_BITS + VLEN_BITS; // 48
const FLAG_SHIFT: u64 = POP_SHIFT + 8; // 56
/// CLOCK reference bit used by cache-mode eviction.
pub const FLAG_CLOCK_REF: u64 = 1;
/// Version counter bits (7-bit, wraps mod 128), packed above the CLOCK bit.
const VERSION_SHIFT: u64 = FLAG_SHIFT + 1; // 57
const VERSION_MASK: u64 = 0x7F;

/// Number of words an item with the given key/value lengths occupies.
#[inline]
pub const fn item_words(klen: usize, vlen: usize) -> u32 {
    (1 + klen.div_ceil(8) + vlen.div_ceil(8) + 2) as u32
}

/// Byte length a remote reader must fetch to cover header..guardian.
#[inline]
pub const fn rdma_read_len(klen: usize, vlen: usize) -> u32 {
    ((1 + klen.div_ceil(8) + vlen.div_ceil(8) + 1) * 8) as u32
}

/// A view of an item at a word offset inside an arena's word slice.
///
/// All methods take the word slice explicitly so the same accessor works on
/// the shard's own arena and (in tests) on fetched copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItemRef {
    /// Word offset of the item header within the region.
    pub off: u64,
}

impl ItemRef {
    /// Writes a brand-new item at `off` with version 0. The guardian is
    /// published last with `Release` ordering, making the item bytes visible
    /// to any reader that observes `GUARD_VALID`.
    pub fn write_new(words: &[AtomicU64], off: u64, key: &[u8], value: &[u8]) -> ItemRef {
        Self::write_new_versioned(words, off, key, value, 0)
    }

    /// [`Self::write_new`] stamping an explicit item version (mod 128). The
    /// version lives in the header word, which is stored *before* the
    /// guardian publication, so any fetch that validates also reads a
    /// consistent version — the replica-pointer export path relies on this
    /// to detect a replica copy lagging behind the primary.
    pub fn write_new_versioned(
        words: &[AtomicU64],
        off: u64,
        key: &[u8],
        value: &[u8],
        version: u8,
    ) -> ItemRef {
        assert!(key.len() <= KLEN_MASK as usize, "key too long");
        assert!(value.len() <= VLEN_MASK as usize, "value too long");
        let kw = key.len().div_ceil(8);
        let vw = value.len().div_ceil(8);
        let base = off as usize;
        let header = (key.len() as u64)
            | ((value.len() as u64) << KLEN_BITS)
            | (((version as u64) & VERSION_MASK) << VERSION_SHIFT);
        words[base].store(header, Ordering::Relaxed);
        Self::store_bytes(words, base + 1, key);
        Self::store_bytes(words, base + 1 + kw, value);
        words[base + 1 + kw + vw].store(GUARD_VALID, Ordering::Release);
        words[base + 1 + kw + vw + 1].store(0, Ordering::Relaxed);
        ItemRef { off }
    }

    fn store_bytes(words: &[AtomicU64], mut w: usize, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            words[w].store(u64::from_le_bytes(c.try_into().unwrap()), Ordering::Relaxed);
            w += 1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            words[w].store(u64::from_le_bytes(buf), Ordering::Relaxed);
        }
    }

    fn load_bytes(words: &[AtomicU64], w: usize, len: usize, out: &mut Vec<u8>) {
        let full = len / 8;
        for i in 0..full {
            out.extend_from_slice(&words[w + i].load(Ordering::Relaxed).to_le_bytes());
        }
        let rem = len % 8;
        if rem != 0 {
            let v = words[w + full].load(Ordering::Relaxed).to_le_bytes();
            out.extend_from_slice(&v[..rem]);
        }
    }

    #[inline]
    fn header(&self, words: &[AtomicU64]) -> u64 {
        words[self.off as usize].load(Ordering::Relaxed)
    }

    /// Key length in bytes.
    #[inline]
    pub fn klen(&self, words: &[AtomicU64]) -> usize {
        (self.header(words) & KLEN_MASK) as usize
    }

    /// Value length in bytes.
    #[inline]
    pub fn vlen(&self, words: &[AtomicU64]) -> usize {
        ((self.header(words) >> KLEN_BITS) & VLEN_MASK) as usize
    }

    /// Total words occupied (header through lease).
    pub fn total_words(&self, words: &[AtomicU64]) -> u32 {
        item_words(self.klen(words), self.vlen(words))
    }

    /// Bytes a remote reader fetches (header through guardian).
    pub fn read_len(&self, words: &[AtomicU64]) -> u32 {
        rdma_read_len(self.klen(words), self.vlen(words))
    }

    /// Copies the key out.
    pub fn key(&self, words: &[AtomicU64]) -> Vec<u8> {
        let klen = self.klen(words);
        let mut out = Vec::with_capacity(klen);
        Self::load_bytes(words, self.off as usize + 1, klen, &mut out);
        out
    }

    /// Compares the stored key against `key` without allocating.
    pub fn key_eq(&self, words: &[AtomicU64], key: &[u8]) -> bool {
        let klen = self.klen(words);
        if klen != key.len() {
            return false;
        }
        let base = self.off as usize + 1;
        let mut chunks = key.chunks_exact(8);
        let mut w = base;
        for c in chunks.by_ref() {
            if words[w].load(Ordering::Relaxed) != u64::from_le_bytes(c.try_into().unwrap()) {
                return false;
            }
            w += 1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            if words[w].load(Ordering::Relaxed) != u64::from_le_bytes(buf) {
                return false;
            }
        }
        true
    }

    /// Hashes the stored key without allocating — byte-for-byte identical to
    /// [`crate::hash_key`] on the key bytes. This is what lets the packed
    /// index re-derive an entry's home group during incremental resize from
    /// nothing but the 48-bit offset in the bucket line: index entries always
    /// reference live items, so the key bytes are immutably present.
    pub fn stored_key_hash(&self, words: &[AtomicU64]) -> u64 {
        let klen = self.klen(words);
        let mut h: u64 = crate::FNV_OFFSET;
        let mut w = self.off as usize + 1;
        let mut remaining = klen;
        while remaining > 0 {
            let v = words[w].load(Ordering::Relaxed);
            let take = remaining.min(8);
            for i in 0..take {
                h ^= (v >> (i * 8)) & 0xFF;
                h = h.wrapping_mul(crate::FNV_PRIME);
            }
            w += 1;
            remaining -= take;
        }
        crate::avalanche(h)
    }

    /// Copies the value out.
    pub fn value(&self, words: &[AtomicU64]) -> Vec<u8> {
        let vlen = self.vlen(words);
        let mut out = Vec::with_capacity(vlen);
        self.value_into(words, &mut out);
        out
    }

    /// Appends the value bytes to `out` — the zero-allocation variant the
    /// server's GET hot path uses with a reused scratch buffer.
    pub fn value_into(&self, words: &[AtomicU64], out: &mut Vec<u8>) {
        let klen = self.klen(words);
        let vlen = self.vlen(words);
        out.reserve(vlen);
        Self::load_bytes(words, self.off as usize + 1 + klen.div_ceil(8), vlen, out);
    }

    fn guardian_word(&self, words: &[AtomicU64]) -> usize {
        self.off as usize + 1 + self.klen(words).div_ceil(8) + self.vlen(words).div_ceil(8)
    }

    /// Loads the guardian with `Acquire` (pairs with the publication store).
    pub fn guardian(&self, words: &[AtomicU64]) -> u64 {
        words[self.guardian_word(words)].load(Ordering::Acquire)
    }

    /// Whether the item is live.
    pub fn is_valid(&self, words: &[AtomicU64]) -> bool {
        self.guardian(words) == GUARD_VALID
    }

    /// Atomically flips the guardian to `GUARD_DEAD`. Returns `true` if the
    /// item was live (i.e. this call performed the kill).
    pub fn kill(&self, words: &[AtomicU64]) -> bool {
        let w = self.guardian_word(words);
        words[w]
            .compare_exchange(GUARD_VALID, GUARD_DEAD, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn lease_word(&self, words: &[AtomicU64]) -> usize {
        self.guardian_word(words) + 1
    }

    /// Current lease expiry (absolute virtual ns; 0 = never leased).
    pub fn lease(&self, words: &[AtomicU64]) -> u64 {
        words[self.lease_word(words)].load(Ordering::Relaxed)
    }

    /// Extends the lease to `expiry` if that is later than the current one.
    pub fn extend_lease(&self, words: &[AtomicU64], expiry: u64) {
        let w = self.lease_word(words);
        let cur = words[w].load(Ordering::Relaxed);
        if expiry > cur {
            words[w].store(expiry, Ordering::Relaxed);
        }
    }

    /// Saturating popularity counter (0..=255), bumped on each server-side
    /// access; drives the 1–64 s lease-term scaling.
    pub fn popularity(&self, words: &[AtomicU64]) -> u8 {
        ((self.header(words) >> POP_SHIFT) & 0xFF) as u8
    }

    /// Increments the popularity counter (saturating).
    pub fn bump_popularity(&self, words: &[AtomicU64]) {
        let h = self.header(words);
        let pop = (h >> POP_SHIFT) & 0xFF;
        if pop < 0xFF {
            words[self.off as usize].store(h + (1 << POP_SHIFT), Ordering::Relaxed);
        }
    }

    /// Item version (mod 128), stamped at write time. Fresh inserts start at
    /// 0; each out-of-place replace bumps it, so a replica copy whose version
    /// differs from the primary's is observably stale even while its own
    /// guardian still reads `GUARD_VALID`.
    pub fn version(&self, words: &[AtomicU64]) -> u8 {
        ((self.header(words) >> VERSION_SHIFT) & VERSION_MASK) as u8
    }

    /// Reads the CLOCK reference bit.
    pub fn clock_ref(&self, words: &[AtomicU64]) -> bool {
        (self.header(words) >> FLAG_SHIFT) & FLAG_CLOCK_REF != 0
    }

    /// Sets or clears the CLOCK reference bit.
    pub fn set_clock_ref(&self, words: &[AtomicU64], on: bool) {
        let h = self.header(words);
        let nh = if on {
            h | (FLAG_CLOCK_REF << FLAG_SHIFT)
        } else {
            h & !(FLAG_CLOCK_REF << FLAG_SHIFT)
        };
        if nh != h {
            words[self.off as usize].store(nh, Ordering::Relaxed);
        }
    }
}

/// Client-side validation of a blob fetched by a one-sided RDMA Read.
///
/// The blob must start at the item header and span
/// [`rdma_read_len`] bytes. Validation checks, in order: structural
/// consistency (lengths fit the blob), the guardian magic, and that the item
/// really holds `expected_key` — which defends even against the
/// reclaimed-and-reused case that the lease protocol is designed to prevent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchedItem {
    /// The value bytes extracted from the blob.
    pub value: Vec<u8>,
    /// The item version stamped in the fetched header (mod 128).
    pub version: u8,
}

impl FetchedItem {
    /// Parses and validates a fetched blob.
    pub fn parse(blob: &[u8], expected_key: &[u8]) -> Result<FetchedItem, ItemError> {
        if blob.len() < 16 {
            return Err(ItemError::Truncated);
        }
        let header = u64::from_le_bytes(blob[0..8].try_into().unwrap());
        let klen = (header & KLEN_MASK) as usize;
        let vlen = ((header >> KLEN_BITS) & VLEN_MASK) as usize;
        let need = rdma_read_len(klen, vlen) as usize;
        if blob.len() < need {
            return Err(ItemError::Truncated);
        }
        let kw = klen.div_ceil(8);
        let vw = vlen.div_ceil(8);
        let guard_off = (1 + kw + vw) * 8;
        let guardian = u64::from_le_bytes(blob[guard_off..guard_off + 8].try_into().unwrap());
        if guardian == GUARD_DEAD {
            return Err(ItemError::Stale);
        }
        if guardian != GUARD_VALID {
            return Err(ItemError::Corrupt);
        }
        let key = &blob[8..8 + klen];
        if key != expected_key {
            return Err(ItemError::Corrupt);
        }
        let vstart = (1 + kw) * 8;
        Ok(FetchedItem {
            value: blob[vstart..vstart + vlen].to_vec(),
            version: ((header >> VERSION_SHIFT) & VERSION_MASK) as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_words(n: usize) -> Vec<AtomicU64> {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    }

    fn blob_of(words: &[AtomicU64], item: ItemRef) -> Vec<u8> {
        let len = item.read_len(words) as usize;
        let mut out = Vec::with_capacity(len);
        for w in 0..len / 8 {
            out.extend_from_slice(
                &words[item.off as usize + w]
                    .load(Ordering::Relaxed)
                    .to_le_bytes(),
            );
        }
        out
    }

    #[test]
    fn write_and_read_back() {
        let words = arena_words(64);
        let item = ItemRef::write_new(&words, 3, b"user:42", b"hello world value");
        assert_eq!(item.klen(&words), 7);
        assert_eq!(item.vlen(&words), 17);
        assert_eq!(item.key(&words), b"user:42");
        assert_eq!(item.value(&words), b"hello world value");
        assert!(item.is_valid(&words));
        assert!(item.key_eq(&words, b"user:42"));
        assert!(!item.key_eq(&words, b"user:43"));
        assert!(!item.key_eq(&words, b"user:4"));
        assert_eq!(item.total_words(&words), item_words(7, 17));
    }

    #[test]
    fn stored_key_hash_matches_hash_key() {
        let words = arena_words(128);
        let mut off = 0u64;
        for key in [
            &b""[..],
            b"k",
            b"8bytes!!",
            b"user:42",
            b"key16bytes......",
            b"a-rather-long-key-spanning-several-words",
        ] {
            let item = ItemRef::write_new(&words, off, key, b"v");
            assert_eq!(
                item.stored_key_hash(&words),
                crate::hash_key(key),
                "key {:?}",
                String::from_utf8_lossy(key)
            );
            off += item.total_words(&words) as u64;
        }
    }

    #[test]
    fn empty_key_and_value() {
        let words = arena_words(8);
        let item = ItemRef::write_new(&words, 0, b"", b"");
        assert_eq!(item.klen(&words), 0);
        assert_eq!(item.vlen(&words), 0);
        assert_eq!(item.total_words(&words), 3);
        assert!(item.is_valid(&words));
    }

    #[test]
    fn kill_is_idempotent_and_one_shot() {
        let words = arena_words(16);
        let item = ItemRef::write_new(&words, 0, b"k", b"v");
        assert!(item.kill(&words));
        assert!(!item.kill(&words), "second kill must report already-dead");
        assert!(!item.is_valid(&words));
        assert_eq!(item.guardian(&words), GUARD_DEAD);
    }

    #[test]
    fn lease_extends_monotonically() {
        let words = arena_words(16);
        let item = ItemRef::write_new(&words, 0, b"k", b"v");
        assert_eq!(item.lease(&words), 0);
        item.extend_lease(&words, 1_000);
        item.extend_lease(&words, 500); // shorter: ignored
        assert_eq!(item.lease(&words), 1_000);
        item.extend_lease(&words, 2_000);
        assert_eq!(item.lease(&words), 2_000);
    }

    #[test]
    fn popularity_saturates() {
        let words = arena_words(16);
        let item = ItemRef::write_new(&words, 0, b"k", b"v");
        for _ in 0..300 {
            item.bump_popularity(&words);
        }
        assert_eq!(item.popularity(&words), 255);
        // Lengths unchanged by popularity writes.
        assert_eq!(item.klen(&words), 1);
        assert_eq!(item.vlen(&words), 1);
    }

    #[test]
    fn version_roundtrips_and_survives_flag_and_pop_writes() {
        let words = arena_words(16);
        let item = ItemRef::write_new_versioned(&words, 0, b"k", b"v", 93);
        assert_eq!(item.version(&words), 93);
        item.set_clock_ref(&words, true);
        for _ in 0..300 {
            item.bump_popularity(&words);
        }
        item.set_clock_ref(&words, false);
        assert_eq!(item.version(&words), 93);
        assert_eq!(item.klen(&words), 1);
        assert_eq!(item.vlen(&words), 1);
        // Fresh writes default to version 0; versions wrap at 7 bits.
        let v0 = ItemRef::write_new(&words, 8, b"k", b"v");
        assert_eq!(v0.version(&words), 0);
        let wrapped = ItemRef::write_new_versioned(&words, 8, b"k", b"v", 128);
        assert_eq!(wrapped.version(&words), 0);
    }

    #[test]
    fn fetched_item_reports_version() {
        let words = arena_words(32);
        let item = ItemRef::write_new_versioned(&words, 0, b"vkey", b"vvalue", 17);
        let blob = blob_of(&words, item);
        let f = FetchedItem::parse(&blob, b"vkey").unwrap();
        assert_eq!(f.value, b"vvalue");
        assert_eq!(f.version, 17);
    }

    #[test]
    fn clock_bit_roundtrip() {
        let words = arena_words(16);
        let item = ItemRef::write_new(&words, 0, b"k", b"v");
        assert!(!item.clock_ref(&words));
        item.set_clock_ref(&words, true);
        assert!(item.clock_ref(&words));
        item.set_clock_ref(&words, false);
        assert!(!item.clock_ref(&words));
    }

    #[test]
    fn fetched_item_validates_live_blob() {
        let words = arena_words(32);
        let item = ItemRef::write_new(&words, 0, b"key16bytes......", &[0xCD; 32]);
        let blob = blob_of(&words, item);
        let f = FetchedItem::parse(&blob, b"key16bytes......").unwrap();
        assert_eq!(f.value, vec![0xCD; 32]);
    }

    #[test]
    fn fetched_item_detects_staleness() {
        let words = arena_words(32);
        let item = ItemRef::write_new(&words, 0, b"k1", b"v1");
        item.kill(&words);
        let blob = blob_of(&words, item);
        assert_eq!(
            FetchedItem::parse(&blob, b"k1").unwrap_err(),
            ItemError::Stale
        );
    }

    #[test]
    fn fetched_item_detects_reuse_by_other_key() {
        let words = arena_words(32);
        // Memory got reclaimed and now holds a different key of equal length.
        let item = ItemRef::write_new(&words, 0, b"other-key", b"zzz");
        let blob = blob_of(&words, item);
        assert_eq!(
            FetchedItem::parse(&blob, b"cached-ke").unwrap_err(),
            ItemError::Corrupt
        );
    }

    #[test]
    fn fetched_item_detects_zeroed_memory() {
        let blob = vec![0u8; 64];
        // Header decodes as klen=0, vlen=0; guardian word is 0 -> corrupt.
        assert_eq!(
            FetchedItem::parse(&blob, b"").unwrap_err(),
            ItemError::Corrupt
        );
    }

    #[test]
    fn fetched_item_detects_truncation() {
        let words = arena_words(32);
        let item = ItemRef::write_new(&words, 0, b"key", b"a-long-enough-value");
        let blob = blob_of(&words, item);
        assert_eq!(
            FetchedItem::parse(&blob[..blob.len() - 8], b"key").unwrap_err(),
            ItemError::Truncated
        );
        assert_eq!(
            FetchedItem::parse(&[], b"key").unwrap_err(),
            ItemError::Truncated
        );
    }

    #[test]
    fn concurrent_readers_see_valid_or_dead_never_torn() {
        use std::sync::Arc;
        let words: Arc<Vec<AtomicU64>> = Arc::new(arena_words(32));
        let item = ItemRef::write_new(&words, 0, b"race-key", b"race-value-0123456");
        let read_len = item.read_len(&words) as usize;
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..2 {
            let w = words.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut outcomes = [0u64; 2];
                while !stop.load(Ordering::Relaxed) {
                    let mut blob = Vec::with_capacity(read_len);
                    for i in 0..read_len / 8 {
                        blob.extend_from_slice(&w[i].load(Ordering::Relaxed).to_le_bytes());
                    }
                    match FetchedItem::parse(&blob, b"race-key") {
                        Ok(f) => {
                            assert_eq!(f.value, b"race-value-0123456");
                            outcomes[0] += 1;
                        }
                        Err(ItemError::Stale) => outcomes[1] += 1,
                        Err(e) => panic!("unexpected: {e:?}"),
                    }
                    std::thread::yield_now();
                }
                outcomes
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        item.kill(&words);
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let _ = r.join().unwrap();
        }
    }
}
