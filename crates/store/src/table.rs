//! The cache-friendly compact hash table (§4.1.3).
//!
//! The table stores *locations* (48-bit arena word offsets), not data. Its
//! main branch is a contiguous array of 64-byte buckets — one cache line —
//! each holding an 8-byte header and 7 slots:
//!
//! ```text
//! header : [ occupancy filter : 7+1 bits ][ overflow-bucket link : 56 bits ]
//! slot   : [ key signature    : 16 bits  ][ arena word offset    : 48 bits ]
//! ```
//!
//! A lookup reads one cache line, tests the 7-bit occupancy filter, compares
//! 16-bit signatures, and only dereferences into the arena for a full key
//! comparison when a signature matches — cutting both pointer chasing and key
//! memcmp traffic. Collisions beyond 7 entries chain through dynamically
//! allocated overflow buckets (the 56-bit header link); after removals the
//! table *merges* chained buckets back into earlier free slots and releases
//! emptied overflow buckets.
//!
//! The table is owned exclusively by one shard thread (`&mut` API). Remote
//! RDMA-Read GETs bypass it entirely — that is the point of the design.

/// Slots per bucket (7 × 8 B slots + 8 B header = 64 B).
pub const SLOTS_PER_BUCKET: usize = 7;

/// Maximum keys per [`CompactTable::lookup_batch`] interleaved probe pass.
pub const LOOKUP_BATCH: usize = 16;

const SIG_BITS: u64 = 16;
const SIG_MASK: u64 = (1 << SIG_BITS) - 1;
const OFF_MASK: u64 = (1 << 48) - 1;
const FILTER_MASK: u64 = 0x7F;
const LINK_SHIFT: u64 = 8;

#[derive(Clone, Copy, Default)]
#[repr(C, align(64))]
struct Bucket {
    header: u64,
    slots: [u64; SLOTS_PER_BUCKET],
}

impl Bucket {
    #[inline]
    fn filter(&self) -> u64 {
        self.header & FILTER_MASK
    }

    #[inline]
    fn is_used(&self, slot: usize) -> bool {
        self.filter() & (1 << slot) != 0
    }

    #[inline]
    fn set_used(&mut self, slot: usize, used: bool) {
        if used {
            self.header |= 1 << slot;
        } else {
            self.header &= !(1 << slot);
        }
    }

    /// Overflow link: 0 = none, otherwise (overflow index + 1).
    #[inline]
    fn link(&self) -> u64 {
        self.header >> LINK_SHIFT
    }

    #[inline]
    fn set_link(&mut self, link: u64) {
        self.header = (self.header & FILTER_MASK) | (link << LINK_SHIFT);
    }

    #[inline]
    fn slot_sig(&self, slot: usize) -> u16 {
        (self.slots[slot] & SIG_MASK) as u16
    }

    #[inline]
    fn slot_off(&self, slot: usize) -> u64 {
        self.slots[slot] >> SIG_BITS
    }

    #[inline]
    fn set_slot(&mut self, slot: usize, sig: u16, off: u64) {
        debug_assert!(off <= OFF_MASK);
        self.slots[slot] = (sig as u64) | (off << SIG_BITS);
        self.set_used(slot, true);
    }

    #[inline]
    fn clear_slot(&mut self, slot: usize) {
        self.slots[slot] = 0;
        self.set_used(slot, false);
    }

    fn first_free(&self) -> Option<usize> {
        let f = self.filter();
        if f == FILTER_MASK {
            None
        } else {
            Some((!f & FILTER_MASK).trailing_zeros() as usize)
        }
    }

    fn occupancy(&self) -> u32 {
        self.filter().count_ones()
    }
}

/// Lookup/maintenance statistics; drives the A-HASH ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Buckets (cache lines) touched during lookups.
    pub buckets_probed: u64,
    /// 16-bit signature hits that required a full key comparison.
    pub full_compares: u64,
    /// Full comparisons that turned out to be signature false positives.
    pub false_positives: u64,
    /// Overflow buckets allocated.
    pub overflow_allocs: u64,
    /// Overflow buckets merged away after removals.
    pub merges: u64,
    /// Packed table: entries re-placed by incremental-resize migration.
    pub displacements: u64,
    /// Packed table: incremental resizes begun (growth or tombstone purge).
    pub resizes: u64,
    /// Packed table: old-half groups drained by migration steps.
    pub migrated_groups: u64,
    /// Packed table: tombstone lanes discarded when a resize began.
    pub tombstones_purged: u64,
    /// Packed table: inline lease-class refreshes ([`crate::PackedTable::touch`]).
    pub touches: u64,
}

/// The compact hash table. Maps 64-bit key hashes to arena word offsets,
/// delegating full key equality to a caller-provided predicate.
pub struct CompactTable {
    main: Box<[Bucket]>,
    overflow: Vec<Bucket>,
    overflow_free: Vec<u64>,
    mask: u64,
    len: usize,
    stats: TableStats,
}

impl CompactTable {
    /// Creates a table with at least `buckets` main buckets (rounded up to a
    /// power of two). Capacity before chaining is `buckets × 7` entries.
    pub fn new(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().max(1);
        CompactTable {
            main: vec![Bucket::default(); n].into_boxed_slice(),
            overflow: Vec::new(),
            overflow_free: Vec::new(),
            mask: (n - 1) as u64,
            len: 0,
            stats: TableStats::default(),
        }
    }

    /// Creates a table sized for `items` entries at ~70% occupancy.
    pub fn with_capacity(items: usize) -> Self {
        Self::new((items * 10 / 7 / SLOTS_PER_BUCKET).max(1))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// Resets statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = TableStats::default();
    }

    #[inline]
    fn bucket_index(&self, hash: u64) -> usize {
        (hash & self.mask) as usize
    }

    fn bucket(&self, id: BucketId) -> &Bucket {
        match id {
            BucketId::Main(i) => &self.main[i],
            BucketId::Overflow(i) => &self.overflow[i],
        }
    }

    fn bucket_mut(&mut self, id: BucketId) -> &mut Bucket {
        match id {
            BucketId::Main(i) => &mut self.main[i],
            BucketId::Overflow(i) => &mut self.overflow[i],
        }
    }

    fn next_in_chain(&self, id: BucketId) -> Option<BucketId> {
        let link = self.bucket(id).link();
        if link == 0 {
            None
        } else {
            Some(BucketId::Overflow((link - 1) as usize))
        }
    }

    /// Looks up the entry whose signature matches `hash` and for which
    /// `is_match(offset)` confirms full key equality. Returns the offset.
    pub fn lookup(&mut self, hash: u64, is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        self.stats.lookups += 1;
        let start = BucketId::Main(self.bucket_index(hash));
        self.lookup_from(start, crate::signature(hash), is_match)
    }

    /// Walks a bucket chain starting at `start`, confirming signature hits
    /// through `is_match`. Shared by [`lookup`](Self::lookup) and the chained
    /// fallback of [`lookup_batch`](Self::lookup_batch).
    fn lookup_from(
        &mut self,
        start: BucketId,
        sig: u16,
        mut is_match: impl FnMut(u64) -> bool,
    ) -> Option<u64> {
        let mut cur = start;
        loop {
            self.stats.buckets_probed += 1;
            let b = self.bucket(cur);
            let filter = b.filter();
            // Candidate offsets are copied to the stack so `is_match` (which
            // may inspect the table's owner) runs without `b` borrowed — and
            // so a lookup never touches the heap.
            let mut hits = [0u64; SLOTS_PER_BUCKET];
            let mut nhits = 0;
            for s in 0..SLOTS_PER_BUCKET {
                if filter & (1 << s) != 0 && b.slot_sig(s) == sig {
                    hits[nhits] = b.slot_off(s);
                    nhits += 1;
                }
            }
            for &off in &hits[..nhits] {
                self.stats.full_compares += 1;
                if is_match(off) {
                    return Some(off);
                }
                self.stats.false_positives += 1;
            }
            match self.next_in_chain(cur) {
                Some(n) => cur = n,
                None => return None,
            }
        }
    }

    /// Batched lookup with an interleaved probe schedule: pass one touches
    /// the main bucket (one cache line) of *every* key and collects its
    /// signature candidates into stack arrays — the software-prefetch shape,
    /// with all lines in flight before any full key comparison dereferences
    /// the arena; pass two confirms candidates in key order. Results and
    /// statistics are exactly what per-key [`lookup`](Self::lookup) calls
    /// would produce (lookups never mutate the table, so the reordering is
    /// unobservable). `is_match` receives the key index alongside the
    /// candidate offset; `out[i]` gets key `i`'s offset. At most
    /// [`LOOKUP_BATCH`] keys per call.
    pub fn lookup_batch(
        &mut self,
        hashes: &[u64],
        out: &mut [Option<u64>],
        mut is_match: impl FnMut(usize, u64) -> bool,
    ) {
        assert!(hashes.len() <= LOOKUP_BATCH, "batch exceeds LOOKUP_BATCH");
        assert!(out.len() >= hashes.len(), "output buffer too small");
        let mut cands = [[0u64; SLOTS_PER_BUCKET]; LOOKUP_BATCH];
        let mut ncands = [0usize; LOOKUP_BATCH];
        let mut chain = [None::<BucketId>; LOOKUP_BATCH];
        for (i, &hash) in hashes.iter().enumerate() {
            self.stats.lookups += 1;
            self.stats.buckets_probed += 1;
            let sig = crate::signature(hash);
            let head = BucketId::Main(self.bucket_index(hash));
            let b = self.bucket(head);
            let filter = b.filter();
            let mut n = 0;
            for s in 0..SLOTS_PER_BUCKET {
                if filter & (1 << s) != 0 && b.slot_sig(s) == sig {
                    cands[i][n] = b.slot_off(s);
                    n += 1;
                }
            }
            ncands[i] = n;
            chain[i] = self.next_in_chain(head);
        }
        for (i, &hash) in hashes.iter().enumerate() {
            let mut found = None;
            for &off in &cands[i][..ncands[i]] {
                self.stats.full_compares += 1;
                if is_match(i, off) {
                    found = Some(off);
                    break;
                }
                self.stats.false_positives += 1;
            }
            if found.is_none() {
                if let Some(start) = chain[i] {
                    found = self.lookup_from(start, crate::signature(hash), |off| is_match(i, off));
                }
            }
            out[i] = found;
        }
    }

    /// Inserts `(hash, offset)`. The caller is responsible for having checked
    /// that the key is not already present (the engine does a lookup first).
    pub fn insert(&mut self, hash: u64, offset: u64) {
        assert!(offset <= OFF_MASK, "offset exceeds 48 bits");
        let sig = crate::signature(hash);
        let mut cur = BucketId::Main(self.bucket_index(hash));
        loop {
            if let Some(free) = self.bucket(cur).first_free() {
                self.bucket_mut(cur).set_slot(free, sig, offset);
                self.len += 1;
                return;
            }
            match self.next_in_chain(cur) {
                Some(n) => cur = n,
                None => {
                    let idx = self.alloc_overflow();
                    self.bucket_mut(cur).set_link(idx as u64 + 1);
                    self.overflow[idx].set_slot(0, sig, offset);
                    self.len += 1;
                    return;
                }
            }
        }
    }

    fn alloc_overflow(&mut self) -> usize {
        self.stats.overflow_allocs += 1;
        if let Some(i) = self.overflow_free.pop() {
            self.overflow[i as usize] = Bucket::default();
            i as usize
        } else {
            self.overflow.push(Bucket::default());
            self.overflow.len() - 1
        }
    }

    /// Replaces the offset of an existing entry (out-of-place update: same
    /// key, new item location). Returns the old offset.
    pub fn replace(
        &mut self,
        hash: u64,
        new_offset: u64,
        mut is_match: impl FnMut(u64) -> bool,
    ) -> Option<u64> {
        assert!(new_offset <= OFF_MASK, "offset exceeds 48 bits");
        let sig = crate::signature(hash);
        let mut cur = BucketId::Main(self.bucket_index(hash));
        loop {
            let b = self.bucket(cur);
            for s in 0..SLOTS_PER_BUCKET {
                if b.is_used(s) && b.slot_sig(s) == sig {
                    let off = b.slot_off(s);
                    if is_match(off) {
                        self.bucket_mut(cur).set_slot(s, sig, new_offset);
                        return Some(off);
                    }
                }
            }
            cur = self.next_in_chain(cur)?;
        }
    }

    /// Removes the entry for `hash` confirmed by `is_match`. Returns the
    /// removed offset. Afterwards, attempts to merge chained buckets.
    pub fn remove(&mut self, hash: u64, mut is_match: impl FnMut(u64) -> bool) -> Option<u64> {
        let sig = crate::signature(hash);
        let head = self.bucket_index(hash);
        let mut cur = BucketId::Main(head);
        loop {
            let b = self.bucket(cur);
            let mut found: Option<(usize, u64)> = None;
            for s in 0..SLOTS_PER_BUCKET {
                if b.is_used(s) && b.slot_sig(s) == sig {
                    let off = b.slot_off(s);
                    if is_match(off) {
                        found = Some((s, off));
                        break;
                    }
                }
            }
            if let Some((s, off)) = found {
                self.bucket_mut(cur).clear_slot(s);
                self.len -= 1;
                self.merge_chain(head);
                return Some(off);
            }
            match self.next_in_chain(cur) {
                Some(n) => cur = n,
                None => return None,
            }
        }
    }

    /// Compacts a bucket chain: pulls entries from later overflow buckets
    /// into free slots of earlier buckets and unlinks emptied tails. This is
    /// the paper's "merges multiple buckets together after the remove
    /// operations".
    fn merge_chain(&mut self, head: usize) {
        // Collect the chain ids.
        let mut chain = vec![BucketId::Main(head)];
        let mut cur = BucketId::Main(head);
        while let Some(n) = self.next_in_chain(cur) {
            chain.push(n);
            cur = n;
        }
        if chain.len() == 1 {
            return;
        }
        // Move entries from the tail into the earliest free slots.
        let mut changed = true;
        while changed && chain.len() > 1 {
            changed = false;
            let tail = *chain.last().expect("nonempty chain");
            // Find a free slot in an earlier bucket for each tail entry.
            for s in 0..SLOTS_PER_BUCKET {
                if !self.bucket(tail).is_used(s) {
                    continue;
                }
                let sig = self.bucket(tail).slot_sig(s);
                let off = self.bucket(tail).slot_off(s);
                let dest = chain[..chain.len() - 1]
                    .iter()
                    .copied()
                    .find(|&b| self.bucket(b).first_free().is_some());
                if let Some(d) = dest {
                    let free = self.bucket(d).first_free().expect("free slot");
                    self.bucket_mut(d).set_slot(free, sig, off);
                    self.bucket_mut(tail).clear_slot(s);
                    changed = true;
                }
            }
            if self.bucket(tail).occupancy() == 0 {
                // Unlink and recycle the emptied tail.
                let parent = chain[chain.len() - 2];
                self.bucket_mut(parent).set_link(0);
                if let BucketId::Overflow(i) = tail {
                    self.overflow_free.push(i as u64);
                }
                chain.pop();
                self.stats.merges += 1;
            }
        }
    }

    /// Visits every stored offset (diagnostics, migration, eviction scans).
    pub fn for_each(&self, mut f: impl FnMut(u64)) {
        for head in 0..self.main.len() {
            let mut cur = BucketId::Main(head);
            loop {
                let b = self.bucket(cur);
                for s in 0..SLOTS_PER_BUCKET {
                    if b.is_used(s) {
                        f(b.slot_off(s));
                    }
                }
                match self.next_in_chain(cur) {
                    Some(n) => cur = n,
                    None => break,
                }
            }
        }
    }

    /// Number of live overflow buckets (chain pressure diagnostic).
    pub fn overflow_buckets(&self) -> usize {
        self.overflow.len() - self.overflow_free.len()
    }

    /// Bytes held by the main branch plus all overflow buckets.
    pub fn mem_bytes(&self) -> usize {
        (self.main.len() + self.overflow.len()) * std::mem::size_of::<Bucket>()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketId {
    Main(usize),
    Overflow(usize),
}

impl std::fmt::Debug for CompactTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactTable")
            .field("len", &self.len)
            .field("main_buckets", &self.main.len())
            .field("overflow_buckets", &self.overflow_buckets())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_key;
    use std::collections::HashMap;

    /// Test scaffold mapping offsets back to keys so `is_match` can perform
    /// the full comparison the arena would.
    struct Model {
        table: CompactTable,
        by_off: HashMap<u64, Vec<u8>>,
        next_off: u64,
    }

    impl Model {
        fn new(buckets: usize) -> Self {
            Model {
                table: CompactTable::new(buckets),
                by_off: HashMap::new(),
                next_off: 1,
            }
        }

        fn insert(&mut self, key: &[u8]) -> u64 {
            let off = self.next_off;
            self.next_off += 1;
            self.by_off.insert(off, key.to_vec());
            self.table.insert(hash_key(key), off);
            off
        }

        fn lookup(&mut self, key: &[u8]) -> Option<u64> {
            let by_off = &self.by_off;
            self.table.lookup(hash_key(key), |off| {
                by_off.get(&off).is_some_and(|k| k == key)
            })
        }

        fn remove(&mut self, key: &[u8]) -> Option<u64> {
            let by_off = &self.by_off;
            let got = self.table.remove(hash_key(key), |off| {
                by_off.get(&off).is_some_and(|k| k == key)
            });
            if let Some(off) = got {
                self.by_off.remove(&off);
            }
            got
        }
    }

    #[test]
    fn insert_lookup_remove_basic() {
        let mut m = Model::new(4);
        let off = m.insert(b"alpha");
        assert_eq!(m.lookup(b"alpha"), Some(off));
        assert_eq!(m.lookup(b"beta"), None);
        assert_eq!(m.remove(b"alpha"), Some(off));
        assert_eq!(m.lookup(b"alpha"), None);
        assert_eq!(m.remove(b"alpha"), None);
        assert!(m.table.is_empty());
    }

    #[test]
    fn bucket_size_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 64);
        assert_eq!(std::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn overflow_chains_handle_many_collisions() {
        // 1-bucket table: everything collides into one chain.
        let mut m = Model::new(1);
        let keys: Vec<Vec<u8>> = (0..100).map(|i| format!("key-{i}").into_bytes()).collect();
        let offs: Vec<u64> = keys.iter().map(|k| m.insert(k)).collect();
        assert!(m.table.overflow_buckets() > 0);
        for (k, &o) in keys.iter().zip(&offs) {
            assert_eq!(m.lookup(k), Some(o), "{}", String::from_utf8_lossy(k));
        }
        assert_eq!(m.table.len(), 100);
    }

    #[test]
    fn removals_merge_overflow_buckets_away() {
        let mut m = Model::new(1);
        let keys: Vec<Vec<u8>> = (0..50).map(|i| format!("k{i}").into_bytes()).collect();
        for k in &keys {
            m.insert(k);
        }
        let chained = m.table.overflow_buckets();
        assert!(chained >= 6, "expected a deep chain, got {chained}");
        for k in &keys[..43] {
            assert!(m.remove(k).is_some());
        }
        // 7 entries remain; merging must have collapsed the chain entirely.
        assert_eq!(m.table.len(), 7);
        assert_eq!(m.table.overflow_buckets(), 0, "chain should merge back");
        assert!(m.table.stats().merges > 0);
        for k in &keys[43..] {
            assert!(m.lookup(k).is_some());
        }
    }

    #[test]
    fn replace_swaps_offset_in_place() {
        let mut m = Model::new(4);
        let off = m.insert(b"k");
        m.by_off.insert(999, b"k".to_vec());
        let by_off = m.by_off.clone();
        let old = m.table.replace(hash_key(b"k"), 999, |o| {
            by_off.get(&o).is_some_and(|k| k == b"k")
        });
        assert_eq!(old, Some(off));
        m.by_off.remove(&off);
        assert_eq!(m.lookup(b"k"), Some(999));
        assert_eq!(m.table.len(), 1, "replace must not change len");
    }

    #[test]
    fn signature_false_positives_are_counted_not_returned() {
        let mut t = CompactTable::new(1);
        // Two entries with identical signature+bucket but different keys.
        let h = hash_key(b"aaa");
        t.insert(h, 1);
        t.insert(h, 2);
        let got = t.lookup(h, |off| off == 2);
        assert_eq!(got, Some(2));
        assert!(t.stats().false_positives >= 1);
        assert!(t.stats().full_compares >= 2);
    }

    #[test]
    fn for_each_visits_every_entry_once() {
        let mut m = Model::new(2);
        for i in 0..40 {
            m.insert(format!("x{i}").as_bytes());
        }
        let mut seen = Vec::new();
        m.table.for_each(|o| seen.push(o));
        seen.sort_unstable();
        let mut expect: Vec<u64> = m.by_off.keys().copied().collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn probe_counts_reflect_cache_line_touches() {
        let mut m = Model::new(64);
        for i in 0..64 {
            m.insert(format!("p{i}").as_bytes());
        }
        m.table.reset_stats();
        for i in 0..64 {
            m.lookup(format!("p{i}").as_bytes());
        }
        let s = m.table.stats();
        assert_eq!(s.lookups, 64);
        // With 64 buckets and 64 well-mixed keys, chains are rare: almost all
        // lookups touch exactly one cache line.
        assert!(
            s.buckets_probed <= 96,
            "buckets_probed={}",
            s.buckets_probed
        );
    }

    #[test]
    fn lookup_batch_matches_scalar_lookups_and_stats() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xBA7C4);
        // Small table → plenty of collisions and overflow chains.
        let mut a = Model::new(2);
        for i in 0..200 {
            a.insert(format!("bk-{i}").as_bytes());
        }
        // Identical twin driven through the scalar path.
        let mut b = Model::new(2);
        for i in 0..200 {
            b.insert(format!("bk-{i}").as_bytes());
        }
        a.table.reset_stats();
        b.table.reset_stats();
        for round in 0..200 {
            let n = rng.gen_range(1..=LOOKUP_BATCH);
            // Mix of present and absent keys.
            let keys: Vec<Vec<u8>> = (0..n)
                .map(|_| format!("bk-{}", rng.gen_range(0..260)).into_bytes())
                .collect();
            let hashes: Vec<u64> = keys.iter().map(|k| hash_key(k)).collect();
            let mut out = [None; LOOKUP_BATCH];
            let by_off = a.by_off.clone();
            a.table.lookup_batch(&hashes, &mut out, |i, off| {
                by_off.get(&off).is_some_and(|k| k == &keys[i])
            });
            for (i, k) in keys.iter().enumerate() {
                assert_eq!(out[i], b.lookup(k), "round {round} key {i}");
            }
        }
        assert_eq!(
            a.table.stats(),
            b.table.stats(),
            "batched probing must charge identical work"
        );
    }

    #[test]
    #[should_panic(expected = "batch exceeds LOOKUP_BATCH")]
    fn oversized_lookup_batch_panics() {
        let mut t = CompactTable::new(4);
        let hashes = [0u64; LOOKUP_BATCH + 1];
        let mut out = [None; LOOKUP_BATCH + 1];
        t.lookup_batch(&hashes, &mut out, |_, _| false);
    }

    #[test]
    fn randomized_against_std_hashmap() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut m = Model::new(8);
        let mut reference: HashMap<Vec<u8>, u64> = HashMap::new();
        for step in 0..20_000 {
            let k = format!("key-{}", rng.gen_range(0..500)).into_bytes();
            match rng.gen_range(0..3) {
                0 => {
                    if let std::collections::hash_map::Entry::Vacant(e) = reference.entry(k.clone())
                    {
                        let off = m.insert(&k);
                        e.insert(off);
                    }
                }
                1 => {
                    assert_eq!(m.lookup(&k), reference.get(&k).copied(), "step {step}");
                }
                _ => {
                    assert_eq!(m.remove(&k), reference.remove(&k), "step {step}");
                }
            }
            assert_eq!(m.table.len(), reference.len(), "step {step}");
        }
        for (k, &off) in &reference {
            assert_eq!(m.lookup(k), Some(off));
        }
    }
}
