//! Lease-deferred memory reclamation (§4.2.3).
//!
//! Shards cannot observe one-sided RDMA Reads, so they cannot reference-count
//! remote pointers. Instead, every RDMA-readable item carries a *lease*: a
//! promise that its memory stays intact until the lease expires. When an item
//! is superseded or deleted, its guardian is flipped immediately (so readers
//! detect staleness) but the block enters this queue and is only returned to
//! the arena once `now > lease_expiry` — at which point no client is entitled
//! to read it anymore.
//!
//! The queue is a min-heap on expiry. The paper runs this on a background
//! thread; in the engine it is pumped from the shard loop (and from the
//! simulator's periodic reclamation event), which has identical semantics.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A dead block awaiting lease expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadBlock {
    /// Arena word offset.
    pub off: u64,
    /// Block length in words.
    pub words: u32,
    /// Absolute virtual time after which the block may be freed.
    pub expiry: u64,
}

impl PartialOrd for DeadBlock {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeadBlock {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.expiry, self.off).cmp(&(other.expiry, other.off))
    }
}

/// Min-heap of dead blocks ordered by lease expiry.
#[derive(Debug, Default)]
pub struct ReclaimQueue {
    heap: BinaryHeap<Reverse<DeadBlock>>,
    pending_words: u64,
    peak_pending_blocks: usize,
    peak_pending_words: u64,
}

impl ReclaimQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defers a block until `expiry`.
    pub fn push(&mut self, off: u64, words: u32, expiry: u64) {
        self.pending_words += words as u64;
        self.heap.push(Reverse(DeadBlock { off, words, expiry }));
        self.peak_pending_blocks = self.peak_pending_blocks.max(self.heap.len());
        self.peak_pending_words = self.peak_pending_words.max(self.pending_words);
    }

    /// Pops every block whose lease expired at or before `now`, invoking
    /// `free` for each. Returns the number of blocks reclaimed.
    pub fn reclaim(&mut self, now: u64, mut free: impl FnMut(u64, u32)) -> usize {
        let mut n = 0;
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.expiry > now {
                break;
            }
            let Reverse(b) = self.heap.pop().expect("peeked entry");
            self.pending_words -= b.words as u64;
            free(b.off, b.words);
            n += 1;
        }
        n
    }

    /// Number of blocks waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no blocks are waiting.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Words tied up awaiting expiry (memory-pressure diagnostic).
    pub fn pending_words(&self) -> u64 {
        self.pending_words
    }

    /// Earliest pending expiry, if any (used to schedule the next
    /// reclamation event efficiently).
    pub fn next_expiry(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(b)| b.expiry)
    }

    /// High-water mark of blocks held back by leases (memory-pressure
    /// diagnostic: how much dead memory the lease protocol pins at worst).
    pub fn peak_pending(&self) -> (usize, u64) {
        (self.peak_pending_blocks, self.peak_pending_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_release_in_expiry_order() {
        let mut q = ReclaimQueue::new();
        q.push(30, 8, 300);
        q.push(10, 8, 100);
        q.push(20, 8, 200);
        let mut freed = Vec::new();
        assert_eq!(q.reclaim(250, |off, _| freed.push(off)), 2);
        assert_eq!(freed, vec![10, 20]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_expiry(), Some(300));
    }

    #[test]
    fn nothing_expires_early() {
        let mut q = ReclaimQueue::new();
        q.push(0, 4, 1_000);
        assert_eq!(q.reclaim(999, |_, _| panic!("must not free")), 0);
        assert_eq!(q.reclaim(1_000, |_, _| {}), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn pending_words_accounting() {
        let mut q = ReclaimQueue::new();
        q.push(0, 10, 50);
        q.push(16, 6, 60);
        assert_eq!(q.pending_words(), 16);
        q.reclaim(55, |_, _| {});
        assert_eq!(q.pending_words(), 6);
        q.reclaim(100, |_, _| {});
        assert_eq!(q.pending_words(), 0);
    }

    #[test]
    fn equal_expiries_all_release_together() {
        let mut q = ReclaimQueue::new();
        for i in 0..10 {
            q.push(i * 8, 8, 42);
        }
        let mut n = 0;
        q.reclaim(42, |_, _| n += 1);
        assert_eq!(n, 10);
    }
}
