//! Registered-memory arena.
//!
//! Real RDMA requires memory to be registered with the HCA up front, so the
//! arena is a fixed-capacity slab of 8-byte `AtomicU64` words allocated at
//! shard start. Allocation is a bump pointer plus segregated per-class free
//! lists: requests are rounded up to a *size class* — exact for small blocks
//! (≤ 16 words, covering the paper's 16 B/32 B YCSB items), geometric with
//! eight steps per power of two above that (≤ 12.5 % internal padding) — so
//! near-miss sizes share a list instead of stranding blocks. Classes are
//! derived deterministically from the requested length, so
//! [`free`](Arena::free) with the original `len` always lands on the list
//! [`alloc`](Arena::alloc) drew from. Blocks are never split or coalesced in
//! place; instead [`compact`](Arena::compact) retreats the bump frontier over
//! free blocks that border it, turning tail fragmentation back into headroom
//! any class can be carved from.
//!
//! The arena hands out *word offsets*. Only the owning shard thread calls
//! [`alloc`](Arena::alloc)/[`free`](Arena::free); concurrent remote readers
//! access the words directly through the atomic slice.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Rounds a block length up to its size class, in words.
///
/// Lengths up to 16 words are their own class (zero padding on the hot
/// small-item path). Above that, classes are spaced an eighth of a power of
/// two apart: `step = 2^(⌊log2(len-1)⌋ - 3)`, rounded up to a multiple of
/// `step`, bounding internal waste at 12.5 %.
#[inline]
pub fn size_class(len: u32) -> u32 {
    if len <= 16 {
        return len;
    }
    let k = 31 - (len - 1).leading_zeros(); // len > 16 ⇒ k ≥ 4
    let step = 1u32 << (k - 3);
    (len + step - 1) & !(step - 1)
}

/// Allocation statistics, used by eviction policies and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total capacity in words.
    pub capacity_words: u64,
    /// Words currently handed out to live blocks (in class units, i.e.
    /// including per-block class padding).
    pub live_words: u64,
    /// Words sitting on free lists.
    pub free_list_words: u64,
    /// Words never yet allocated (bump headroom).
    pub headroom_words: u64,
    /// Number of alloc calls served.
    pub allocs: u64,
    /// Number of free calls.
    pub frees: u64,
    /// Number of [`Arena::compact`] calls that reclaimed at least one word.
    pub compactions: u64,
    /// Total words returned from free lists to bump headroom by compaction.
    pub compacted_words: u64,
}

/// Fixed-capacity word arena with size-classed free lists.
pub struct Arena {
    words: Arc<[AtomicU64]>,
    bump: u64,
    /// Size class (words) → offsets of free blocks of that class.
    free: HashMap<u32, Vec<u64>>,
    live_words: u64,
    free_words: u64,
    allocs: u64,
    frees: u64,
    compactions: u64,
    compacted_words: u64,
}

impl Arena {
    /// Creates an arena with `capacity_words` zeroed words.
    pub fn new(capacity_words: usize) -> Self {
        let mut v = Vec::with_capacity(capacity_words);
        v.resize_with(capacity_words, || AtomicU64::new(0));
        Arena {
            words: v.into(),
            bump: 0,
            free: HashMap::new(),
            live_words: 0,
            free_words: 0,
            allocs: 0,
            frees: 0,
            compactions: 0,
            compacted_words: 0,
        }
    }

    /// Creates an arena sized in bytes (rounded down to whole words).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        Self::new(bytes / 8)
    }

    /// The raw word slice — this is the "registered memory region" remote
    /// peers read through one-sided operations.
    #[inline]
    pub fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Shared handle to the backing memory, for registering the arena as an
    /// RDMA-readable region with the fabric.
    pub fn memory(&self) -> Arc<[AtomicU64]> {
        self.words.clone()
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// Allocates a block of at least `len` words (rounded up to the size
    /// class). Returns its word offset, or `None` when neither the class free
    /// list nor bump headroom can satisfy it.
    pub fn alloc(&mut self, len: u32) -> Option<u64> {
        if len == 0 {
            return None;
        }
        let class = size_class(len);
        if let Some(list) = self.free.get_mut(&class) {
            if let Some(off) = list.pop() {
                self.free_words -= class as u64;
                self.live_words += class as u64;
                self.allocs += 1;
                return Some(off);
            }
        }
        let off = self.bump;
        if off + class as u64 <= self.words.len() as u64 {
            self.bump += class as u64;
            self.live_words += class as u64;
            self.allocs += 1;
            Some(off)
        } else {
            None
        }
    }

    /// Returns a block to its class free list. The block must have come from
    /// [`alloc`](Self::alloc) with the same `len` (the class is re-derived
    /// from it).
    ///
    /// The whole class extent is zeroed so stale guardian magics can never
    /// masquerade as live items to a racing RDMA Read that holds an expired
    /// pointer.
    pub fn free(&mut self, off: u64, len: u32) {
        let class = size_class(len);
        debug_assert!(
            off + class as u64 <= self.words.len() as u64,
            "free out of range"
        );
        for w in &self.words[off as usize..(off + class as u64) as usize] {
            w.store(0, Ordering::Release);
        }
        self.free.entry(class).or_default().push(off);
        self.live_words -= class as u64;
        self.free_words += class as u64;
        self.frees += 1;
    }

    /// Whether an allocation of `len` words would currently succeed.
    pub fn can_alloc(&self, len: u32) -> bool {
        let class = size_class(len.max(1));
        self.free.get(&class).is_some_and(|l| !l.is_empty())
            || self.bump + class as u64 <= self.words.len() as u64
    }

    /// Retreats the bump frontier over free blocks that end exactly at it,
    /// converting tail fragmentation back into headroom that *any* size
    /// class can be carved from. Returns the number of words reclaimed.
    ///
    /// O(free blocks) — callers (the engine) only invoke this after an
    /// allocation already failed, so the cost is off the hot path.
    pub fn compact(&mut self) -> u64 {
        // Blocks are disjoint, so end offsets are unique keys.
        let mut by_end: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
        for (&class, list) in &self.free {
            for &off in list {
                by_end.insert(off + class as u64, (off, class));
            }
        }
        let mut reclaimed = 0u64;
        while let Some((&end, &(off, class))) = by_end.last_key_value() {
            if end != self.bump {
                break;
            }
            by_end.pop_last();
            self.bump = off;
            reclaimed += class as u64;
        }
        if reclaimed > 0 {
            self.free.clear();
            for (off, class) in by_end.into_values() {
                self.free.entry(class).or_default().push(off);
            }
            self.free_words -= reclaimed;
            self.compactions += 1;
            self.compacted_words += reclaimed;
        }
        reclaimed
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            capacity_words: self.words.len() as u64,
            live_words: self.live_words,
            free_list_words: self.free_words,
            headroom_words: self.words.len() as u64 - self.bump,
            allocs: self.allocs,
            frees: self.frees,
            compactions: self.compactions,
            compacted_words: self.compacted_words,
        }
    }

    /// Fraction of capacity currently live, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.live_words as f64 / self.words.len() as f64
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Arena({:?})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = Arena::new(100);
        assert_eq!(a.alloc(10), Some(0));
        assert_eq!(a.alloc(10), Some(10));
        assert_eq!(a.alloc(5), Some(20));
        assert_eq!(a.stats().live_words, 25);
    }

    #[test]
    fn freed_blocks_are_reused_exact_fit() {
        let mut a = Arena::new(100);
        let b1 = a.alloc(8).unwrap();
        let _b2 = a.alloc(8).unwrap();
        a.free(b1, 8);
        assert_eq!(a.alloc(8), Some(b1), "exact-fit reuse");
        // A different size must not steal the freed block.
        let mut a = Arena::new(100);
        let b1 = a.alloc(8).unwrap();
        a.free(b1, 8);
        let b3 = a.alloc(4).unwrap();
        assert_ne!(b3, b1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Arena::new(10);
        assert!(a.alloc(11).is_none());
        assert_eq!(a.alloc(10), Some(0));
        assert!(a.alloc(1).is_none());
        assert!(!a.can_alloc(1));
        a.free(0, 10);
        assert!(a.can_alloc(10));
    }

    #[test]
    fn zero_length_alloc_rejected() {
        let mut a = Arena::new(10);
        assert_eq!(a.alloc(0), None);
    }

    #[test]
    fn free_zeroes_memory() {
        let mut a = Arena::new(16);
        let off = a.alloc(4).unwrap();
        for i in 0..4 {
            a.words()[off as usize + i].store(0xDEAD_BEEF, Ordering::Relaxed);
        }
        a.free(off, 4);
        for i in 0..4 {
            assert_eq!(a.words()[off as usize + i].load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn stats_track_alloc_free_cycles() {
        let mut a = Arena::new(1000);
        let mut offs = Vec::new();
        for _ in 0..10 {
            offs.push(a.alloc(7).unwrap());
        }
        for &o in &offs[..5] {
            a.free(o, 7);
        }
        let s = a.stats();
        assert_eq!(s.allocs, 10);
        assert_eq!(s.frees, 5);
        assert_eq!(s.live_words, 35);
        assert_eq!(s.free_list_words, 35);
        assert!((a.occupancy() - 0.035).abs() < 1e-9);
    }

    #[test]
    fn churn_does_not_leak_capacity() {
        let mut a = Arena::new(64);
        // Arena fits exactly 8 blocks of 8; churn 10_000 alloc/free pairs.
        for i in 0..10_000u64 {
            let off = a.alloc(8).unwrap_or_else(|| panic!("iteration {i} failed"));
            a.free(off, 8);
        }
        assert_eq!(a.stats().live_words, 0);
    }

    #[test]
    fn size_classes_are_exact_small_and_eighth_spaced_large() {
        // Small sizes round to themselves — zero padding for YCSB items.
        for len in 1..=16u32 {
            assert_eq!(size_class(len), len);
        }
        // Large sizes round up to a multiple of 2^(k-3); bounded waste.
        assert_eq!(size_class(17), 18);
        assert_eq!(size_class(18), 18);
        assert_eq!(size_class(31), 32);
        assert_eq!(size_class(32), 32);
        assert_eq!(size_class(33), 36);
        assert_eq!(size_class(1000), 1024);
        for len in 17..50_000u32 {
            let c = size_class(len);
            assert!(c >= len);
            assert!(
                (c - len) as f64 <= 0.125 * len as f64 + 1.0,
                "len {len} class {c}"
            );
            // Idempotent: a class is its own class.
            assert_eq!(size_class(c), c);
        }
    }

    #[test]
    fn near_miss_sizes_share_a_free_list() {
        let mut a = Arena::new(256);
        let b = a.alloc(17).unwrap(); // class 18
        a.free(b, 17);
        // An 18-word request lands in the same class and reuses the block.
        assert_eq!(a.alloc(18), Some(b));
    }

    #[test]
    fn compact_retreats_frontier_over_adjacent_free_blocks() {
        let mut a = Arena::new(64);
        let b1 = a.alloc(8).unwrap();
        let b2 = a.alloc(8).unwrap();
        let b3 = a.alloc(8).unwrap();
        assert_eq!(a.stats().headroom_words, 64 - 24);
        // Free the two blocks bordering the frontier (out of order) plus an
        // interior one that does NOT border it after b1 stays live... b1 is
        // live, so only b2+b3 can be reclaimed.
        a.free(b3, 8);
        a.free(b2, 8);
        assert_eq!(a.compact(), 16);
        let s = a.stats();
        assert_eq!(s.headroom_words, 64 - 8);
        assert_eq!(s.free_list_words, 0);
        assert_eq!(s.compactions, 1);
        assert_eq!(s.compacted_words, 16);
        // The reclaimed headroom can now serve a class no free list held.
        assert_eq!(a.alloc(11), Some(b2));
        let _ = b1;
    }

    #[test]
    fn compact_leaves_interior_fragments_on_free_lists() {
        let mut a = Arena::new(64);
        let b1 = a.alloc(8).unwrap();
        let _b2 = a.alloc(8).unwrap();
        a.free(b1, 8); // interior: b2 is live above it
        assert_eq!(a.compact(), 0);
        let s = a.stats();
        assert_eq!(s.free_list_words, 8);
        assert_eq!(s.compactions, 0);
        // The block is still reusable at its class.
        assert_eq!(a.alloc(8), Some(b1));
    }

    #[test]
    fn compact_reclaims_mixed_classes_in_one_pass() {
        let mut a = Arena::new(256);
        let b1 = a.alloc(5).unwrap();
        let b2 = a.alloc(20).unwrap(); // class 20
        let b3 = a.alloc(7).unwrap();
        a.free(b1, 5);
        a.free(b2, 20);
        a.free(b3, 7);
        // Everything borders the frontier transitively: full retreat.
        assert_eq!(a.compact(), 32);
        assert_eq!(a.stats().headroom_words, 256);
        assert_eq!(a.stats().free_list_words, 0);
        assert_eq!(a.alloc(3), Some(0));
    }
}
