//! Registered-memory arena.
//!
//! Real RDMA requires memory to be registered with the HCA up front, so the
//! arena is a fixed-capacity slab of 8-byte `AtomicU64` words allocated at
//! shard start. Allocation is a bump pointer plus segregated exact-fit free
//! lists: HydraDB workloads use a small number of distinct item sizes (the
//! paper's 16 B/32 B YCSB items, 4 MiB MapReduce chunks), for which exact-fit
//! reuse is both O(1) and fragmentation-free. Blocks are never split or
//! coalesced; a freed block is only ever reused at its exact size.
//!
//! The arena hands out *word offsets*. Only the owning shard thread calls
//! [`alloc`](Arena::alloc)/[`free`](Arena::free); concurrent remote readers
//! access the words directly through the atomic slice.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocation statistics, used by eviction policies and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Total capacity in words.
    pub capacity_words: u64,
    /// Words currently handed out to live blocks.
    pub live_words: u64,
    /// Words sitting on free lists.
    pub free_list_words: u64,
    /// Words never yet allocated (bump headroom).
    pub headroom_words: u64,
    /// Number of alloc calls served.
    pub allocs: u64,
    /// Number of free calls.
    pub frees: u64,
}

/// Fixed-capacity word arena with exact-fit free lists.
pub struct Arena {
    words: Arc<[AtomicU64]>,
    bump: u64,
    free: HashMap<u32, Vec<u64>>,
    live_words: u64,
    free_words: u64,
    allocs: u64,
    frees: u64,
}

impl Arena {
    /// Creates an arena with `capacity_words` zeroed words.
    pub fn new(capacity_words: usize) -> Self {
        let mut v = Vec::with_capacity(capacity_words);
        v.resize_with(capacity_words, || AtomicU64::new(0));
        Arena {
            words: v.into(),
            bump: 0,
            free: HashMap::new(),
            live_words: 0,
            free_words: 0,
            allocs: 0,
            frees: 0,
        }
    }

    /// Creates an arena sized in bytes (rounded down to whole words).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        Self::new(bytes / 8)
    }

    /// The raw word slice — this is the "registered memory region" remote
    /// peers read through one-sided operations.
    #[inline]
    pub fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Shared handle to the backing memory, for registering the arena as an
    /// RDMA-readable region with the fabric.
    pub fn memory(&self) -> Arc<[AtomicU64]> {
        self.words.clone()
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// Allocates a block of exactly `len` words. Returns its word offset, or
    /// `None` when neither the free list nor bump headroom can satisfy it.
    pub fn alloc(&mut self, len: u32) -> Option<u64> {
        if len == 0 {
            return None;
        }
        if let Some(list) = self.free.get_mut(&len) {
            if let Some(off) = list.pop() {
                self.free_words -= len as u64;
                self.live_words += len as u64;
                self.allocs += 1;
                return Some(off);
            }
        }
        let off = self.bump;
        if off + len as u64 <= self.words.len() as u64 {
            self.bump += len as u64;
            self.live_words += len as u64;
            self.allocs += 1;
            Some(off)
        } else {
            None
        }
    }

    /// Returns a block to the free list. The block must have come from
    /// [`alloc`](Self::alloc) with the same `len`.
    ///
    /// The block is zeroed so stale guardian magics can never masquerade as
    /// live items to a racing RDMA Read that holds an expired pointer.
    pub fn free(&mut self, off: u64, len: u32) {
        debug_assert!(
            off + len as u64 <= self.words.len() as u64,
            "free out of range"
        );
        for w in &self.words[off as usize..(off + len as u64) as usize] {
            w.store(0, Ordering::Release);
        }
        self.free.entry(len).or_default().push(off);
        self.live_words -= len as u64;
        self.free_words += len as u64;
        self.frees += 1;
    }

    /// Whether an allocation of `len` words would currently succeed.
    pub fn can_alloc(&self, len: u32) -> bool {
        self.free.get(&len).is_some_and(|l| !l.is_empty())
            || self.bump + len as u64 <= self.words.len() as u64
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            capacity_words: self.words.len() as u64,
            live_words: self.live_words,
            free_list_words: self.free_words,
            headroom_words: self.words.len() as u64 - self.bump,
            allocs: self.allocs,
            frees: self.frees,
        }
    }

    /// Fraction of capacity currently live, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.words.is_empty() {
            return 0.0;
        }
        self.live_words as f64 / self.words.len() as f64
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Arena({:?})", self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = Arena::new(100);
        assert_eq!(a.alloc(10), Some(0));
        assert_eq!(a.alloc(10), Some(10));
        assert_eq!(a.alloc(5), Some(20));
        assert_eq!(a.stats().live_words, 25);
    }

    #[test]
    fn freed_blocks_are_reused_exact_fit() {
        let mut a = Arena::new(100);
        let b1 = a.alloc(8).unwrap();
        let _b2 = a.alloc(8).unwrap();
        a.free(b1, 8);
        assert_eq!(a.alloc(8), Some(b1), "exact-fit reuse");
        // A different size must not steal the freed block.
        let mut a = Arena::new(100);
        let b1 = a.alloc(8).unwrap();
        a.free(b1, 8);
        let b3 = a.alloc(4).unwrap();
        assert_ne!(b3, b1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = Arena::new(10);
        assert!(a.alloc(11).is_none());
        assert_eq!(a.alloc(10), Some(0));
        assert!(a.alloc(1).is_none());
        assert!(!a.can_alloc(1));
        a.free(0, 10);
        assert!(a.can_alloc(10));
    }

    #[test]
    fn zero_length_alloc_rejected() {
        let mut a = Arena::new(10);
        assert_eq!(a.alloc(0), None);
    }

    #[test]
    fn free_zeroes_memory() {
        let mut a = Arena::new(16);
        let off = a.alloc(4).unwrap();
        for i in 0..4 {
            a.words()[off as usize + i].store(0xDEAD_BEEF, Ordering::Relaxed);
        }
        a.free(off, 4);
        for i in 0..4 {
            assert_eq!(a.words()[off as usize + i].load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn stats_track_alloc_free_cycles() {
        let mut a = Arena::new(1000);
        let mut offs = Vec::new();
        for _ in 0..10 {
            offs.push(a.alloc(7).unwrap());
        }
        for &o in &offs[..5] {
            a.free(o, 7);
        }
        let s = a.stats();
        assert_eq!(s.allocs, 10);
        assert_eq!(s.frees, 5);
        assert_eq!(s.live_words, 35);
        assert_eq!(s.free_list_words, 35);
        assert!((a.occupancy() - 0.035).abs() < 1e-9);
    }

    #[test]
    fn churn_does_not_leak_capacity() {
        let mut a = Arena::new(64);
        // Arena fits exactly 8 blocks of 8; churn 10_000 alloc/free pairs.
        for i in 0..10_000u64 {
            let off = a.alloc(8).unwrap_or_else(|| panic!("iteration {i} failed"));
            a.free(off, 8);
        }
        assert_eq!(a.stats().live_words, 0);
    }
}
