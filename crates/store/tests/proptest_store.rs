//! Property-based and model-based tests for the storage engine: arbitrary
//! operation sequences against a reference `HashMap`, with reclamation
//! pumped at arbitrary points, must stay observationally equivalent — and a
//! remote reader's view (fetched blobs) must always be current-or-detected.

use std::collections::HashMap;

use hydra_store::{
    item_words, EngineConfig, EngineError, FetchedItem, IndexKind, ItemError, ShardEngine,
    WriteMode,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, Vec<u8>),
    Update(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
    Reclaim,
    AdvanceTime(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..48))
            .prop_map(|(k, v)| Op::Update(k, v)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Delete),
        Just(Op::Reclaim),
        (1u64..5_000).prop_map(Op::AdvanceTime),
    ]
}

fn key_of(k: u8) -> Vec<u8> {
    format!("key-{k:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut engine = ShardEngine::new(EngineConfig {
            arena_words: 1 << 15,
            expected_items: 256,
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 500,
            max_lease_ns: 32_000,
        });
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let key = key_of(k);
                    let got = engine.insert(now, &key, &v);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                        got.unwrap();
                        e.insert(v);
                    } else {
                        prop_assert_eq!(got.unwrap_err(), EngineError::Exists);
                    }
                }
                Op::Update(k, v) => {
                    let key = key_of(k);
                    let got = engine.update(now, &key, &v);
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(key) {
                        got.unwrap();
                        e.insert(v);
                    } else {
                        prop_assert_eq!(got.unwrap_err(), EngineError::NotFound);
                    }
                }
                Op::Get(k) => {
                    let key = key_of(k);
                    let got = engine.get(now, &key).map(|g| g.value);
                    prop_assert_eq!(got, model.get(&key).cloned());
                }
                Op::Delete(k) => {
                    let key = key_of(k);
                    let got = engine.delete(now, &key);
                    if model.remove(&key).is_some() {
                        got.unwrap();
                    } else {
                        prop_assert_eq!(got.unwrap_err(), EngineError::NotFound);
                    }
                }
                Op::Reclaim => {
                    engine.pump_reclaim(now);
                }
                Op::AdvanceTime(dt) => {
                    now += dt;
                }
            }
            prop_assert_eq!(engine.len(), model.len());
        }
        // Final sweep: everything the model holds is retrievable.
        for (k, v) in &model {
            let got = engine.get(now, k).map(|g| g.value);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        // And reclamation eventually returns all dead memory.
        engine.pump_reclaim(u64::MAX);
        prop_assert_eq!(engine.reclaim_pending(), 0);
    }

    #[test]
    fn fetched_blobs_are_current_or_detected(
        updates in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..20),
    ) {
        // A reader snapshots the item location once, then the writer keeps
        // updating. Every snapshot read must parse as either the value that
        // was current at snapshot time or a detected stale — never a wrong
        // value.
        let mut engine = ShardEngine::new(EngineConfig {
            arena_words: 1 << 14,
            expected_items: 64,
            index: IndexKind::Packed,
            write_mode: WriteMode::Reliable,
            min_lease_ns: 1_000_000, // long lease: no reuse during the test
            max_lease_ns: 64_000_000,
        });
        let key = b"watched-key";
        engine.insert(0, key, &updates[0]).unwrap();
        let mut now = 1;
        for (i, v) in updates.iter().enumerate().skip(1) {
            // Reader caches the current location.
            let info = engine.get(now, key).unwrap().info;
            let snapshot_value = engine.get(now, key).unwrap().value;
            // Writer updates out-of-place.
            engine.update(now + 1, key, v).unwrap();
            // Reader fetches through the stale pointer.
            let words = engine.words();
            let mut blob = Vec::with_capacity(info.read_len as usize);
            for w in 0..(info.read_len as usize) / 8 {
                blob.extend_from_slice(
                    &words[info.off_words as usize + w]
                        .load(std::sync::atomic::Ordering::Relaxed)
                        .to_le_bytes(),
                );
            }
            match FetchedItem::parse(&blob, key) {
                Ok(f) => prop_assert_eq!(f.value, snapshot_value, "iteration {}", i),
                Err(ItemError::Stale) => {} // correctly detected
                Err(e) => prop_assert!(false, "unexpected parse error {e:?}"),
            }
            now += 2;
        }
    }

    #[test]
    fn item_words_matches_layout(klen in 0usize..128, vlen in 0usize..512) {
        // header + key words + value words + guardian + lease
        let expect = 1 + klen.div_ceil(8) + vlen.div_ceil(8) + 2;
        prop_assert_eq!(item_words(klen, vlen) as usize, expect);
    }
}

#[test]
fn cache_mode_never_reports_oom_under_churn() {
    let mut engine = ShardEngine::new(EngineConfig {
        arena_words: 2_048,
        expected_items: 64,
        index: IndexKind::Packed,
        write_mode: WriteMode::Cache,
        min_lease_ns: 0,
        max_lease_ns: 0,
    });
    for i in 0..5_000u64 {
        let key = format!("churn-{:04}", i % 500);
        engine
            .put(i, key.as_bytes(), &[i as u8; 40])
            .unwrap_or_else(|e| panic!("op {i}: {e}"));
        if i % 97 == 0 {
            engine.pump_reclaim(i);
        }
    }
    assert!(engine.stats().evictions > 0);
}
