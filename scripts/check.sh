#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> packed-group + skiplist-tower layout static assertions (64 B size + alignment)"
cargo test -q --release -p hydra-store layout_is_one_aligned_cache_line

echo "==> bench smoke (reduced scale, scratch results dir)"
SMOKE_RESULTS="$(mktemp -d)"
trap 'rm -rf "$SMOKE_RESULTS"' EXIT
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_events
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_batching
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_index
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin chaos_recovery
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_skew
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_scan
# perf_mix asserts the tail-isolation floors: mixed point-GET p99 <= 2x
# pure-point under DualLane, and DualLane scan throughput >= 0.9x FIFO.
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_mix
# perf_elastic asserts the elastic-membership floors: mid-migration GET p99
# <= 3x steady state, and zero keys lost/duplicated/misplaced after a live
# node join (plus a timed quiesced drain).
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_elastic
# perf_repl asserts the group-commit write-plane floors: >= 1.5x per-record
# strict at channel depth 64, >= 1.3x cluster write throughput at depth 64,
# and a strict-semantics write p50 <= 5.5 us with one synchronous replica.
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_repl
# perf_conn asserts the connection-scaling floors: mux + huge pages >= 1.3x
# dedicated/4K throughput at the top of the client sweep (the NIC cache
# cliff), and <= 5% overhead at 16 clients where the caches never miss.
HYDRA_SCALE=smoke HYDRA_RESULTS_DIR="$SMOKE_RESULTS" \
    cargo run -q --release -p hydra-bench --bin perf_conn

echo "==> chaos soak (100 fixed-seed fault plans, full consistency checks)"
cargo test -q --release -p hydra-integration --test chaos -- --ignored

echo "OK: all tier-1 checks passed"
