#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "OK: all tier-1 checks passed"
